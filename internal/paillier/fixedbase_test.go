package paillier

import (
	"crypto/rand"
	"fmt"
	"math/big"
	mrand "math/rand"
	"testing"
)

// TestFixedBaseExpMatchesBigExp checks the windowed tables against
// math/big's general ladder across exponent widths, including the
// boundaries of the precomputed range and the fallback beyond it.
func TestFixedBaseExpMatchesBigExp(t *testing.T) {
	mod, _ := new(big.Int).SetString("fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffc5", 16)
	base := big.NewInt(0xABCDEF)
	fb := NewFixedBase(base, mod, 96)
	rng := mrand.New(mrand.NewSource(11))
	exps := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(15),
		big.NewInt(16),
		new(big.Int).Lsh(one, 95), // top of the table range
		new(big.Int).Sub(new(big.Int).Lsh(one, 96), one), // all windows saturated
		new(big.Int).Lsh(one, 200),                       // beyond MaxBits: fallback
	}
	for i := 0; i < 50; i++ {
		exps = append(exps, new(big.Int).Rand(rng, new(big.Int).Lsh(one, 96)))
	}
	for _, x := range exps {
		want := new(big.Int).Exp(base, x, mod)
		if got := fb.Exp(x); got.Cmp(want) != 0 {
			t.Fatalf("Exp(%v) = %v, want %v", x, got, want)
		}
	}
	if got := fb.MaxBits(); got < 96 {
		t.Errorf("MaxBits = %d, want >= 96", got)
	}
}

// TestFastObfuscationDecryptsIdentically proves the DJN h^x obfuscators
// are drop-in: every plaintext round-trips exactly as under baseline
// obfuscation, across signs and magnitudes.
func TestFastObfuscationDecryptsIdentically(t *testing.T) {
	priv := testKey(t, 256)
	pk := NewPublicKey(priv.N) // fresh copy: don't mutate the cached key
	if pk.FastObfuscation() {
		t.Fatal("fast obfuscation enabled before EnableFastObfuscation")
	}
	if err := pk.EnableFastObfuscation(rand.Reader, 0); err != nil {
		t.Fatal(err)
	}
	if !pk.FastObfuscation() || pk.ObfuscationBase() == nil {
		t.Fatal("fast obfuscation not enabled")
	}
	if got := pk.ObfuscationBits(); got != DefaultObfuscationBits {
		t.Fatalf("ObfuscationBits = %d, want %d", got, DefaultObfuscationBits)
	}
	for _, v := range []int64{0, 1, -1, 42, -42, 1 << 40, -(1 << 40), 1<<62 - 1} {
		m := big.NewInt(v)
		if v < 0 {
			m.Add(m, pk.N)
		}
		ct, err := pk.Encrypt(rand.Reader, m)
		if err != nil {
			t.Fatalf("Encrypt(%d) under fast obfuscation: %v", v, err)
		}
		got, err := priv.DecryptInt64(ct)
		if err != nil {
			t.Fatalf("Decrypt(%d): %v", v, err)
		}
		if got != v {
			t.Errorf("fast-obfuscated round trip of %d = %d", v, got)
		}
	}
	// Fast obfuscation must stay probabilistic.
	c1, _ := pk.Encrypt(rand.Reader, big.NewInt(5))
	c2, _ := pk.Encrypt(rand.Reader, big.NewInt(5))
	if c1.C.Cmp(c2.C) == 0 {
		t.Error("two fast-obfuscated encryptions of the same plaintext are identical")
	}
}

// TestFastObfuscationHomomorphismsPreserved runs HAdd/SMul/Sub over
// fast-obfuscated ciphertexts: the obfuscation variant must not disturb
// the algebra.
func TestFastObfuscationHomomorphismsPreserved(t *testing.T) {
	priv := testKey(t, 256)
	pk := NewPublicKey(priv.N)
	if err := pk.EnableFastObfuscation(rand.Reader, 0); err != nil {
		t.Fatal(err)
	}
	ca, err := pk.Encrypt(rand.Reader, big.NewInt(1000))
	if err != nil {
		t.Fatal(err)
	}
	cb, err := pk.Encrypt(rand.Reader, big.NewInt(58))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := priv.DecryptInt64(pk.Add(ca, cb)); err != nil || v != 1058 {
		t.Errorf("Add = %d, %v; want 1058", v, err)
	}
	diff, err := pk.Sub(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := priv.DecryptInt64(diff); err != nil || v != 942 {
		t.Errorf("Sub = %d, %v; want 942", v, err)
	}
	prod, err := pk.MulScalar(cb, big.NewInt(-3))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := priv.DecryptInt64(prod); err != nil || v != -174 {
		t.Errorf("MulScalar = %d, %v; want -174", v, err)
	}
}

// TestSetObfuscationBaseValidation covers the passive party's ingress: a
// base from the wire is installed only when it is a unit in (1, n²).
func TestSetObfuscationBaseValidation(t *testing.T) {
	priv := testKey(t, 256)
	pk := NewPublicKey(priv.N)
	bad := []*big.Int{
		nil,
		big.NewInt(0),
		big.NewInt(-4),
		big.NewInt(1),
		new(big.Int).Set(pk.NSquared),
		new(big.Int).Add(pk.NSquared, one),
		new(big.Int).Mul(priv.p, big.NewInt(7)), // shares a factor with n
	}
	for i, h := range bad {
		if err := pk.SetObfuscationBase(h, 0); err == nil {
			t.Errorf("case %d: SetObfuscationBase(%v) accepted", i, h)
		}
		if pk.FastObfuscation() {
			t.Fatalf("case %d: invalid base left fast obfuscation enabled", i)
		}
	}
	// A genuine base derived by the key owner round-trips through the
	// passive install and produces decryptable ciphertexts.
	owner := NewPublicKey(priv.N)
	if err := owner.EnableFastObfuscation(rand.Reader, 0); err != nil {
		t.Fatal(err)
	}
	h := new(big.Int).SetBytes(owner.ObfuscationBase().Bytes()) // as shipped
	if err := pk.SetObfuscationBase(h, owner.ObfuscationBits()); err != nil {
		t.Fatalf("installing shipped base: %v", err)
	}
	ct, err := pk.Encrypt(rand.Reader, big.NewInt(777))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := priv.DecryptInt64(ct); err != nil || v != 777 {
		t.Errorf("passive fast-obfuscated ciphertext = %d, %v; want 777", v, err)
	}
}

// TestObfuscationBitsBounded covers the hostile-ObfBits ingress: the
// exponent length arrives from the network in MsgSetup, and an unbounded
// value sizes the fixed-base tables (and a 2^expBits Lsh), so anything
// past the 2·|n| bound must be rejected before any allocation.
func TestObfuscationBitsBounded(t *testing.T) {
	priv := testKey(t, 256)
	owner := NewPublicKey(priv.N)
	if err := owner.EnableFastObfuscation(rand.Reader, 0); err != nil {
		t.Fatal(err)
	}
	h := owner.ObfuscationBase()

	pk := NewPublicKey(priv.N)
	hostile := []int{2*pk.Bits() + 1, 1 << 20, 1 << 30, int(^uint(0) >> 1)}
	for _, bits := range hostile {
		if err := pk.SetObfuscationBase(h, bits); err == nil {
			t.Errorf("SetObfuscationBase accepted expBits=%d", bits)
		}
		if pk.FastObfuscation() {
			t.Fatalf("expBits=%d left fast obfuscation enabled", bits)
		}
	}
	if err := NewPublicKey(priv.N).EnableFastObfuscation(rand.Reader, 1<<30); err == nil {
		t.Error("EnableFastObfuscation accepted expBits=1<<30")
	}
	// The bound itself is still accepted, and the installed key encrypts
	// decryptable ciphertexts.
	if err := pk.SetObfuscationBase(h, 2*pk.Bits()); err != nil {
		t.Fatalf("SetObfuscationBase at the bound rejected: %v", err)
	}
	ct, err := pk.Encrypt(rand.Reader, big.NewInt(55))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := priv.DecryptInt64(ct); err != nil || v != 55 {
		t.Errorf("round trip at the bound = %d, %v; want 55", v, err)
	}
}

// TestDefaultObfuscationBitsFor pins the modulus-size → short-exponent
// mapping: twice the SP 800-57 symmetric-equivalent strength, so larger
// keys are not silently handed the 2048-bit margin.
func TestDefaultObfuscationBitsFor(t *testing.T) {
	cases := []struct{ mod, want int }{
		{256, 224}, {1024, 224}, {2048, 224},
		{3072, 256}, {4096, 256},
		{7680, 384}, {8192, 384},
		{15360, 512}, {16384, 512},
	}
	for _, c := range cases {
		if got := DefaultObfuscationBitsFor(c.mod); got != c.want {
			t.Errorf("DefaultObfuscationBitsFor(%d) = %d, want %d", c.mod, got, c.want)
		}
	}
	// The zero-value path through the enable call resolves to the same
	// mapping.
	priv := testKey(t, 256)
	pk := NewPublicKey(priv.N)
	if err := pk.EnableFastObfuscation(rand.Reader, 0); err != nil {
		t.Fatal(err)
	}
	if got, want := pk.ObfuscationBits(), DefaultObfuscationBitsFor(pk.Bits()); got != want {
		t.Errorf("ObfuscationBits = %d, want %d", got, want)
	}
}

func TestDisableFastObfuscation(t *testing.T) {
	priv := testKey(t, 256)
	pk := NewPublicKey(priv.N)
	if err := pk.EnableFastObfuscation(rand.Reader, 0); err != nil {
		t.Fatal(err)
	}
	pk.DisableFastObfuscation()
	if pk.FastObfuscation() || pk.ObfuscationBase() != nil || pk.ObfuscationBits() != 0 {
		t.Fatal("DisableFastObfuscation did not revert to baseline")
	}
	ct, err := pk.Encrypt(rand.Reader, big.NewInt(9))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := priv.DecryptInt64(ct); err != nil || v != 9 {
		t.Errorf("baseline round trip after disable = %d, %v; want 9", v, err)
	}
}

// --- obfuscator benchmarks: the BENCH_crypto.json baseline ---------------

// BenchmarkObfuscatorBaseline measures the paper-exact r^n mod n² cost.
func BenchmarkObfuscatorBaseline(b *testing.B) {
	for _, bits := range []int{256, 512, 1024, 2048} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			priv := testKey(b, bits)
			pk := NewPublicKey(priv.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pk.BaselineObfuscator(rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObfuscatorFixedBase measures the DJN h^x path; the table
// precomputation is excluded (it is one-time, at session setup).
func BenchmarkObfuscatorFixedBase(b *testing.B) {
	for _, bits := range []int{256, 512, 1024, 2048} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			priv := testKey(b, bits)
			pk := NewPublicKey(priv.N)
			if err := pk.EnableFastObfuscation(rand.Reader, 0); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pk.Obfuscator(rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncryptFastObfuscation is the end-to-end Enc cost with the
// fast path on (compare BenchmarkEncrypt, which is the baseline).
func BenchmarkEncryptFastObfuscation(b *testing.B) {
	priv := testKey(b, 512)
	pk := NewPublicKey(priv.N)
	if err := pk.EnableFastObfuscation(rand.Reader, 0); err != nil {
		b.Fatal(err)
	}
	m := big.NewInt(123456789)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pk.Encrypt(rand.Reader, m); err != nil {
			b.Fatal(err)
		}
	}
}
