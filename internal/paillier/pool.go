package paillier

import (
	"crypto/rand"
	"errors"
	"io"
	"math/big"
	"runtime"
	"sync"
)

// ErrPoolClosed is returned by Next once the pool has been closed and its
// remaining precomputed terms have been drained.
var ErrPoolClosed = errors.New("paillier: obfuscator pool closed")

// ObfuscatorPool precomputes obfuscation terms r^n mod n² in background
// goroutines so that the encryption hot path is reduced to two modular
// multiplications. This mirrors the "high-performance library" component of
// VF²Boost: the expensive exponentiations are produced off the critical
// path while the producer is otherwise idle. When fast obfuscation is
// enabled on the key, the workers produce the cheap h^x terms instead.
type ObfuscatorPool struct {
	pk        *PublicKey
	out       chan poolItem
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	random    io.Reader
}

type poolItem struct {
	rn  *big.Int
	err error
}

// NewObfuscatorPool starts `workers` goroutines that keep up to `buffer`
// precomputed obfuscators ready. Close the pool with Close when done.
// If random is nil, crypto/rand.Reader is used; workers <= 0 selects
// GOMAXPROCS workers.
func NewObfuscatorPool(pk *PublicKey, workers, buffer int, random io.Reader) *ObfuscatorPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if buffer <= 0 {
		buffer = 4 * workers
	}
	if random == nil {
		random = rand.Reader
	}
	p := &ObfuscatorPool{
		pk:     pk,
		out:    make(chan poolItem, buffer),
		stop:   make(chan struct{}),
		random: random,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *ObfuscatorPool) worker() {
	defer p.wg.Done()
	for {
		rn, err := p.pk.Obfuscator(p.random)
		select {
		case p.out <- poolItem{rn: rn, err: err}:
			// An error (a transient RNG failure) is surfaced to one
			// caller, but the worker keeps running: the next draw may
			// well succeed, and silently shrinking the worker set would
			// starve the pool for the rest of the session.
		case <-p.stop:
			return
		}
	}
}

// Next returns a fresh obfuscation term, blocking until one is available.
// After Close it drains any remaining precomputed terms and then returns
// ErrPoolClosed instead of blocking forever.
func (p *ObfuscatorPool) Next() (*big.Int, error) {
	select {
	case item := <-p.out:
		return item.rn, item.err
	case <-p.stop:
		// The pool is closed, but workers may have left finished terms in
		// the buffer; hand those out before reporting closure.
		select {
		case item := <-p.out:
			return item.rn, item.err
		default:
			return nil, ErrPoolClosed
		}
	}
}

// Close stops the background workers. Buffered precomputed terms remain
// drainable through Next; after that, Next returns ErrPoolClosed. Close is
// idempotent.
func (p *ObfuscatorPool) Close() {
	p.closeOnce.Do(func() {
		close(p.stop)
		p.wg.Wait()
	})
}
