package paillier

import (
	"crypto/rand"
	"io"
	"math/big"
	"runtime"
	"sync"
)

// ObfuscatorPool precomputes obfuscation terms r^n mod n² in background
// goroutines so that the encryption hot path is reduced to two modular
// multiplications. This mirrors the "high-performance library" component of
// VF²Boost: the expensive exponentiations are produced off the critical
// path while the producer is otherwise idle.
type ObfuscatorPool struct {
	pk     *PublicKey
	out    chan poolItem
	stop   chan struct{}
	wg     sync.WaitGroup
	random io.Reader
}

type poolItem struct {
	rn  *big.Int
	err error
}

// NewObfuscatorPool starts `workers` goroutines that keep up to `buffer`
// precomputed obfuscators ready. Close the pool with Close when done.
// If random is nil, crypto/rand.Reader is used; workers <= 0 selects
// GOMAXPROCS workers.
func NewObfuscatorPool(pk *PublicKey, workers, buffer int, random io.Reader) *ObfuscatorPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if buffer <= 0 {
		buffer = 4 * workers
	}
	if random == nil {
		random = rand.Reader
	}
	p := &ObfuscatorPool{
		pk:     pk,
		out:    make(chan poolItem, buffer),
		stop:   make(chan struct{}),
		random: random,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *ObfuscatorPool) worker() {
	defer p.wg.Done()
	for {
		rn, err := p.pk.Obfuscator(p.random)
		select {
		case p.out <- poolItem{rn: rn, err: err}:
			if err != nil {
				return
			}
		case <-p.stop:
			return
		}
	}
}

// Next returns a fresh obfuscation term, blocking until one is available.
func (p *ObfuscatorPool) Next() (*big.Int, error) {
	item := <-p.out
	return item.rn, item.err
}

// Close stops the background workers. Pending precomputed terms are
// discarded.
func (p *ObfuscatorPool) Close() {
	close(p.stop)
	p.wg.Wait()
}
