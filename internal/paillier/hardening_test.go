package paillier

import (
	"crypto/rand"
	"errors"
	"io"
	"math/big"
	"testing"
	"time"
)

// badCiphertexts enumerates the range violations every ciphertext-consuming
// operation must reject with ErrInvalidCiphertext.
func badCiphertexts(pk *PublicKey) []Ciphertext {
	return []Ciphertext{
		{},                                 // nil value
		{C: big.NewInt(0)},                 // zero: not a unit
		{C: big.NewInt(-17)},               // negative
		{C: new(big.Int).Set(pk.NSquared)}, // == n²
		{C: new(big.Int).Add(pk.NSquared, big.NewInt(5))}, // > n²
	}
}

func TestValidateCiphertextRejectsOutOfRange(t *testing.T) {
	priv := testKey(t, 256)
	for i, ct := range badCiphertexts(priv.Public()) {
		if err := priv.ValidateCiphertext(ct); !errors.Is(err, ErrInvalidCiphertext) {
			t.Errorf("case %d: ValidateCiphertext = %v, want ErrInvalidCiphertext", i, err)
		}
	}
	ok, err := priv.EncryptInt64(rand.Reader, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := priv.ValidateCiphertext(ok); err != nil {
		t.Errorf("ValidateCiphertext rejected a genuine ciphertext: %v", err)
	}
}

// TestSubRejectsAdversarialInputs is the regression test for the nil-panic:
// Sub used to dereference ModInverse's result unchecked, so a subtrahend
// that is not a unit mod n² crashed the process.
func TestSubRejectsAdversarialInputs(t *testing.T) {
	priv := testKey(t, 256)
	good, err := priv.EncryptInt64(rand.Reader, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, bad := range badCiphertexts(priv.Public()) {
		if _, err := priv.Sub(good, bad); !errors.Is(err, ErrInvalidCiphertext) {
			t.Errorf("case %d: Sub(good, bad) = %v, want ErrInvalidCiphertext", i, err)
		}
		if _, err := priv.Sub(bad, good); !errors.Is(err, ErrInvalidCiphertext) {
			t.Errorf("case %d: Sub(bad, good) = %v, want ErrInvalidCiphertext", i, err)
		}
	}
	// In range but not invertible: a multiple of p shares a factor with n²,
	// so ModInverse has no answer. This must be an error, not a panic.
	nonUnit := Ciphertext{C: new(big.Int).Mul(priv.p, big.NewInt(3))}
	if err := priv.ValidateCiphertext(nonUnit); err != nil {
		t.Fatalf("non-unit test vector fell out of range: %v", err)
	}
	if _, err := priv.Sub(good, nonUnit); err == nil {
		t.Error("Sub with non-invertible subtrahend succeeded, want error")
	}
}

func TestMulScalarRejectsAdversarialInputs(t *testing.T) {
	priv := testKey(t, 256)
	for i, bad := range badCiphertexts(priv.Public()) {
		if _, err := priv.MulScalar(bad, big.NewInt(2)); !errors.Is(err, ErrInvalidCiphertext) {
			t.Errorf("case %d: MulScalar = %v, want ErrInvalidCiphertext", i, err)
		}
	}
}

// TestMulScalarReducesLargeScalars: k ≥ n must be reduced mod n, not fed to
// the exponentiation raw — Exp with a non-reduced exponent is both slower
// and inconsistent with the plaintext ring Z_n.
func TestMulScalarReducesLargeScalars(t *testing.T) {
	priv := testKey(t, 256)
	ct, err := priv.EncryptInt64(rand.Reader, 7)
	if err != nil {
		t.Fatal(err)
	}
	// k = n + 5 ≡ 5 (mod n), so the product must decrypt to 35.
	k := new(big.Int).Add(priv.N, big.NewInt(5))
	prod, err := priv.MulScalar(ct, k)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := priv.DecryptInt64(prod); err != nil || v != 35 {
		t.Errorf("MulScalar(ct, n+5) = %d, %v; want 35", v, err)
	}
	// A huge multiple of n acts like zero.
	k2 := new(big.Int).Mul(priv.N, big.NewInt(1<<20))
	prod2, err := priv.MulScalar(ct, k2)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := priv.DecryptInt64(prod2); err != nil || v != 0 {
		t.Errorf("MulScalar(ct, (1<<20)·n) = %d, %v; want 0", v, err)
	}
}

func TestDecryptRejectsAdversarialInputs(t *testing.T) {
	priv := testKey(t, 256)
	for i, bad := range badCiphertexts(priv.Public()) {
		if _, err := priv.Decrypt(bad); !errors.Is(err, ErrInvalidCiphertext) {
			t.Errorf("case %d: Decrypt = %v, want ErrInvalidCiphertext", i, err)
		}
	}
}

// FuzzCiphertextOps feeds arbitrary bytes through the full ciphertext
// surface — Decrypt, Sub, MulScalar, Add — and requires that nothing
// panics. Errors are fine; crashes are the bug this PR fixes.
func FuzzCiphertextOps(f *testing.F) {
	priv := testKey(f, 128)
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1})
	f.Add(priv.N.Bytes())
	f.Add(priv.NSquared.Bytes())
	f.Add(new(big.Int).Mul(priv.p, big.NewInt(9)).Bytes())
	good, err := priv.EncryptInt64(rand.Reader, 11)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Fuzz(func(t *testing.T, raw []byte) {
		ct := CiphertextFromBytes(raw)
		if _, err := priv.Decrypt(ct); err != nil {
			// Rejected: fine. Accepted garbage decrypts to *something*; the
			// point is only that it never panics.
			_ = err
		}
		if diff, err := priv.Sub(good, ct); err == nil {
			_, _ = priv.Decrypt(diff)
		}
		if prod, err := priv.MulScalar(ct, big.NewInt(3)); err == nil {
			_, _ = priv.Decrypt(prod)
		}
		if err := priv.ValidateCiphertext(ct); err == nil {
			_, _ = priv.Decrypt(priv.Add(good, ct))
		}
	})
}

// --- obfuscator pool -----------------------------------------------------

// TestPoolNextAfterClose: Next must drain buffered terms and then return
// ErrPoolClosed — not block forever, which is the deadlock this PR fixes.
func TestPoolNextAfterClose(t *testing.T) {
	priv := testKey(t, 128)
	p := NewObfuscatorPool(priv.Public(), 2, 8, nil)
	// Let the workers fill some of the buffer.
	if _, err := p.Next(); err != nil {
		t.Fatalf("Next before close: %v", err)
	}
	p.Close()
	p.Close() // idempotent

	done := make(chan error, 1)
	go func() {
		var err error
		for {
			if _, err = p.Next(); err != nil {
				break
			}
		}
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("Next after close+drain = %v, want ErrPoolClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Next blocked after Close: pool deadlock")
	}
}

// flakyReader fails its first `failures` reads, then delegates to
// crypto/rand. It models a transient RNG hiccup.
type flakyReader struct {
	failures int
}

func (r *flakyReader) Read(p []byte) (int, error) {
	if r.failures > 0 {
		r.failures--
		return 0, errors.New("transient rng failure")
	}
	return rand.Read(p)
}

var _ io.Reader = (*flakyReader)(nil)

// TestPoolSurvivesTransientRNGError: a worker that hits an RNG error must
// surface it to one caller and keep producing — a single-worker pool used
// to lose its only worker and deadlock every later Next.
func TestPoolSurvivesTransientRNGError(t *testing.T) {
	priv := testKey(t, 128)
	p := NewObfuscatorPool(priv.Public(), 1, 1, &flakyReader{failures: 1})
	defer p.Close()

	sawError, sawTerm := false, false
	deadline := time.After(10 * time.Second)
	for !sawError || !sawTerm {
		select {
		case <-deadline:
			t.Fatalf("pool stalled: sawError=%v sawTerm=%v", sawError, sawTerm)
		default:
		}
		rn, err := p.Next()
		if err != nil {
			sawError = true
			continue
		}
		if rn == nil || rn.Sign() <= 0 {
			t.Fatalf("pool produced invalid term %v", rn)
		}
		sawTerm = true
	}
}

// TestPoolProducesFastTerms: with fast obfuscation enabled on the key, the
// pooled terms must still yield decryptable ciphertexts.
func TestPoolProducesFastTerms(t *testing.T) {
	priv := testKey(t, 256)
	pk := NewPublicKey(priv.N)
	if err := pk.EnableFastObfuscation(rand.Reader, 0); err != nil {
		t.Fatal(err)
	}
	p := NewObfuscatorPool(pk, 2, 4, nil)
	defer p.Close()
	for i := 0; i < 8; i++ {
		rn, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		ct := pk.EncryptWithObfuscator(big.NewInt(int64(i)), rn)
		if v, err := priv.DecryptInt64(ct); err != nil || v != int64(i) {
			t.Fatalf("pooled fast term %d: decrypt = %d, %v", i, v, err)
		}
	}
}
