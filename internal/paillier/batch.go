package paillier

import (
	"io"
	"math/big"
	"runtime"
	"sync"
)

// parallelFor runs fn(i) for i in [0, n) across `workers` goroutines,
// assigning contiguous ranges so each goroutine touches adjacent memory.
// workers <= 0 selects GOMAXPROCS.
func parallelFor(n, workers int, fn func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// EncryptBatch encrypts every plaintext in ms with `workers` goroutines.
// Each worker draws its obfuscators from random (which must be safe for
// concurrent use, as crypto/rand.Reader is).
func (pk *PublicKey) EncryptBatch(random io.Reader, ms []*big.Int, workers int) ([]Ciphertext, error) {
	out := make([]Ciphertext, len(ms))
	var mu sync.Mutex
	var firstErr error
	parallelFor(len(ms), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ct, err := pk.Encrypt(random, ms[i])
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			out[i] = ct
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// DecryptBatch decrypts every ciphertext in cts with `workers` goroutines.
func (priv *PrivateKey) DecryptBatch(cts []Ciphertext, workers int) ([]*big.Int, error) {
	out := make([]*big.Int, len(cts))
	var mu sync.Mutex
	var firstErr error
	parallelFor(len(cts), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m, err := priv.Decrypt(cts[i])
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			out[i] = m
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Sum homomorphically adds all ciphertexts in cts; it returns EncryptZero
// for an empty slice.
func (pk *PublicKey) Sum(cts []Ciphertext) Ciphertext {
	acc := pk.EncryptZero()
	for _, ct := range cts {
		pk.AddInto(&acc, ct)
	}
	return acc
}
