package paillier

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// TestNewPublicKeyInterop: a public key reconstructed from the modulus
// alone (as shared with passive parties) must produce ciphertexts the
// original private key can decrypt, and homomorphic ops must interoperate.
func TestNewPublicKeyInterop(t *testing.T) {
	priv := testKey(t, 256)
	pub := NewPublicKey(priv.N)

	ct, err := pub.Encrypt(rand.Reader, big.NewInt(12345))
	if err != nil {
		t.Fatal(err)
	}
	m, err := priv.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if m.Int64() != 12345 {
		t.Errorf("cross-key decrypt = %v", m)
	}

	// Mix ciphertexts from both key views.
	ct2, err := priv.Encrypt(rand.Reader, big.NewInt(55))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := priv.Decrypt(pub.Add(ct, ct2))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Int64() != 12400 {
		t.Errorf("mixed add = %v", sum)
	}
	if pub.Bits() != priv.Bits() {
		t.Errorf("bits mismatch: %d vs %d", pub.Bits(), priv.Bits())
	}
}

func TestObfuscatorIsUnitPower(t *testing.T) {
	priv := testKey(t, 256)
	rn, err := priv.Obfuscator(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Enc(0) with this obfuscator must decrypt to 0 (r^n is a valid
	// encryption of zero).
	ct := priv.EncryptWithObfuscator(big.NewInt(0), rn)
	m, err := priv.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sign() != 0 {
		t.Errorf("obfuscated zero decrypts to %v", m)
	}
}

func TestParallelForEdges(t *testing.T) {
	sum := 0
	parallelFor(0, 4, func(lo, hi int) { sum += hi - lo })
	if sum != 0 {
		t.Error("empty range executed work")
	}
	var total int
	parallelFor(10, 1, func(lo, hi int) { total += hi - lo })
	if total != 10 {
		t.Errorf("single worker covered %d of 10", total)
	}
	covered := make([]bool, 100)
	parallelFor(100, 7, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i] = true
		}
	})
	for i, c := range covered {
		if !c {
			t.Fatalf("index %d not covered", i)
		}
	}
}
