// Package paillier implements the Paillier additively homomorphic
// cryptosystem (Paillier, EUROCRYPT 1999) on top of math/big.
//
// The implementation follows the optimizations that are standard for
// GBDT-style federated learning workloads:
//
//   - encryption uses the g = n+1 shortcut, so g^m mod n² is computed as
//     (1 + m·n) mod n² with one multiplication instead of a modular
//     exponentiation; the remaining cost is the obfuscation term r^n mod n²,
//     which can be precomputed with an ObfuscatorPool;
//   - decryption uses the Chinese Remainder Theorem, replacing one
//     exponentiation modulo n² with two half-size exponentiations modulo
//     p² and q²;
//   - homomorphic addition (HAdd) is a single modular multiplication and
//     scalar multiplication (SMul) a modular exponentiation, exactly the
//     cost model of Section 5 of the VF²Boost paper;
//   - optionally, EnableFastObfuscation replaces the full r^n ladder with
//     DJN-style short-exponent obfuscators h^x served from precomputed
//     fixed-base tables (see fixedbase.go), cutting obfuscator cost by
//     roughly an order of magnitude. The exact-paper baseline stays
//     available as BaselineObfuscator.
//
// GenerateKey draws two distinct random primes of equal size and requires
// n = p·q to have exactly the requested bit length with gcd(n, φ(n)) = 1.
// The primes are ordinary random primes, not safe primes: nothing in the
// scheme needs p and q to be safe, and safe-prime generation would slow
// setup by orders of magnitude.
//
// All operations on PublicKey and PrivateKey are safe for concurrent use
// once configured; EnableFastObfuscation / SetObfuscationBase are setup
// steps that must complete before concurrent use begins.
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

var one = big.NewInt(1)

// ErrInvalidCiphertext is returned when a ciphertext lies outside (0, n²) —
// the well-formedness every operation requires of wire inputs.
var ErrInvalidCiphertext = errors.New("paillier: ciphertext out of range")

// PublicKey holds the public parameters of a Paillier key pair. The
// generator is fixed to g = n+1, which is the common choice and admits the
// fast encryption path.
type PublicKey struct {
	// N is the S-bit modulus n = p·q.
	N *big.Int
	// NSquared is n², the ciphertext modulus.
	NSquared *big.Int
	// halfN is n/2, used to decide the sign of decoded values.
	halfN *big.Int
	// fast, when non-nil, serves obfuscators as h^x from fixed-base
	// tables instead of the full r^n ladder (see fixedbase.go).
	fast *fastObfuscator
}

// PrivateKey holds the factorization of n and the CRT precomputation used
// for fast decryption.
type PrivateKey struct {
	PublicKey
	p, q     *big.Int
	pSquared *big.Int
	qSquared *big.Int
	pOrder   *big.Int // p-1
	qOrder   *big.Int // q-1
	hp       *big.Int // (L_p(g^{p-1} mod p²))^{-1} mod p
	hq       *big.Int // (L_q(g^{q-1} mod q²))^{-1} mod q
	pInvQ    *big.Int // p^{-1} mod q
}

// Ciphertext is a Paillier ciphertext: an element of Z*_{n²}. The zero
// value is not a valid ciphertext; use PublicKey.Encrypt or
// PublicKey.EncryptZero.
type Ciphertext struct {
	C *big.Int
}

// Clone returns a deep copy of the ciphertext.
func (ct Ciphertext) Clone() Ciphertext {
	return Ciphertext{C: new(big.Int).Set(ct.C)}
}

// Bytes returns the big-endian encoding of the ciphertext.
func (ct Ciphertext) Bytes() []byte { return ct.C.Bytes() }

// CiphertextFromBytes reconstructs a ciphertext from Bytes output.
func CiphertextFromBytes(b []byte) Ciphertext {
	return Ciphertext{C: new(big.Int).SetBytes(b)}
}

// GenerateKey generates a Paillier key pair with an S-bit modulus, reading
// randomness from random (crypto/rand.Reader in production). bits must be
// at least 64 and even.
func GenerateKey(random io.Reader, bits int) (*PrivateKey, error) {
	if bits < 64 || bits%2 != 0 {
		return nil, fmt.Errorf("paillier: invalid modulus size %d (need even, >= 64)", bits)
	}
	for {
		p, err := rand.Prime(random, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating p: %w", err)
		}
		q, err := rand.Prime(random, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		// gcd(n, (p-1)(q-1)) must be 1; with equal-size primes this
		// only fails if p | q-1 or q | p-1, which is vanishingly rare,
		// but check anyway.
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		phi := new(big.Int).Mul(pm1, qm1)
		if new(big.Int).GCD(nil, nil, n, phi).Cmp(one) != 0 {
			continue
		}
		return newPrivateKey(p, q), nil
	}
}

func newPrivateKey(p, q *big.Int) *PrivateKey {
	n := new(big.Int).Mul(p, q)
	n2 := new(big.Int).Mul(n, n)
	priv := &PrivateKey{
		PublicKey: PublicKey{
			N:        n,
			NSquared: n2,
			halfN:    new(big.Int).Rsh(n, 1),
		},
		p:        p,
		q:        q,
		pSquared: new(big.Int).Mul(p, p),
		qSquared: new(big.Int).Mul(q, q),
		pOrder:   new(big.Int).Sub(p, one),
		qOrder:   new(big.Int).Sub(q, one),
		pInvQ:    new(big.Int).ModInverse(p, q),
	}
	// hp = L_p(g^{p-1} mod p²)^{-1} mod p with g = n+1.
	// g^{p-1} mod p² = (1+n)^{p-1} = 1 + (p-1)·n mod p², so
	// L_p(...) = ((p-1)·n mod p²) / p ... computed directly below.
	g := new(big.Int).Add(n, one)
	gp := new(big.Int).Exp(g, priv.pOrder, priv.pSquared)
	priv.hp = new(big.Int).ModInverse(lFunc(gp, p), p)
	gq := new(big.Int).Exp(g, priv.qOrder, priv.qSquared)
	priv.hq = new(big.Int).ModInverse(lFunc(gq, q), q)
	return priv
}

// lFunc computes L_d(x) = (x-1)/d.
func lFunc(x, d *big.Int) *big.Int {
	r := new(big.Int).Sub(x, one)
	return r.Div(r, d)
}

// Public returns the public half of the key.
func (priv *PrivateKey) Public() *PublicKey { return &priv.PublicKey }

// NewPublicKey reconstructs a public key from its modulus, as shared with
// passive parties at session setup.
func NewPublicKey(n *big.Int) *PublicKey {
	return &PublicKey{
		N:        n,
		NSquared: new(big.Int).Mul(n, n),
		halfN:    new(big.Int).Rsh(n, 1),
	}
}

// randomUnit draws r uniformly from Z*_n.
func (pk *PublicKey) randomUnit(random io.Reader) (*big.Int, error) {
	for {
		r, err := rand.Int(random, pk.N)
		if err != nil {
			return nil, err
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			return r, nil
		}
	}
}

// Obfuscator computes a fresh obfuscation term. By default that is
// r^n mod n² — the expensive part of encryption, which ObfuscatorPool
// amortizes; after EnableFastObfuscation it is the much cheaper h^x from
// the fixed-base tables.
func (pk *PublicKey) Obfuscator(random io.Reader) (*big.Int, error) {
	if f := pk.fast; f != nil {
		return f.obfuscator(random)
	}
	return pk.BaselineObfuscator(random)
}

// BaselineObfuscator always computes the full r^n mod n² of the paper's
// cost model, regardless of whether fast obfuscation is enabled. It is the
// reference the fast path is benchmarked against, and the source of the
// derived base h.
func (pk *PublicKey) BaselineObfuscator(random io.Reader) (*big.Int, error) {
	r, err := pk.randomUnit(random)
	if err != nil {
		return nil, fmt.Errorf("paillier: drawing obfuscation randomness: %w", err)
	}
	return r.Exp(r, pk.N, pk.NSquared), nil
}

// Encrypt encrypts the plaintext m, which must lie in [0, n). It draws a
// fresh obfuscator from random.
func (pk *PublicKey) Encrypt(random io.Reader, m *big.Int) (Ciphertext, error) {
	rn, err := pk.Obfuscator(random)
	if err != nil {
		return Ciphertext{}, err
	}
	return pk.EncryptWithObfuscator(m, rn), nil
}

// EncryptWithObfuscator encrypts m using a precomputed obfuscation term
// rn = r^n mod n². The obfuscator must not be reused across messages.
//
// With g = n+1, g^m mod n² = 1 + m·n mod n², so the ciphertext is
// (1 + m·n)·rn mod n².
func (pk *PublicKey) EncryptWithObfuscator(m, rn *big.Int) Ciphertext {
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, one)
	gm.Mod(gm, pk.NSquared)
	gm.Mul(gm, rn)
	gm.Mod(gm, pk.NSquared)
	return Ciphertext{C: gm}
}

// EncryptInt64 encrypts a (possibly negative) int64 by wrapping negatives
// around the modulus, matching the signed convention of DecryptInt64.
func (pk *PublicKey) EncryptInt64(random io.Reader, v int64) (Ciphertext, error) {
	m := big.NewInt(v)
	if v < 0 {
		m.Add(m, pk.N)
	}
	return pk.Encrypt(random, m)
}

// Add returns the homomorphic sum of two ciphertexts: Dec(Add(a,b)) =
// Dec(a) + Dec(b) mod n. This is the HAdd operation of the paper.
func (pk *PublicKey) Add(a, b Ciphertext) Ciphertext {
	c := new(big.Int).Mul(a.C, b.C)
	c.Mod(c, pk.NSquared)
	return Ciphertext{C: c}
}

// AddInto accumulates b into dst in place, avoiding an allocation per
// addition: dst = dst·b mod n². dst must hold a valid ciphertext.
func (pk *PublicKey) AddInto(dst *Ciphertext, b Ciphertext) {
	dst.C.Mul(dst.C, b.C)
	dst.C.Mod(dst.C, pk.NSquared)
}

// ValidateCiphertext rejects ciphertexts outside (0, n²). Every ciphertext
// deserialized from the wire must pass through this check before being fed
// to homomorphic operations; a value outside the group is either
// corruption or an attack, never a legal ciphertext.
func (pk *PublicKey) ValidateCiphertext(ct Ciphertext) error {
	if ct.C == nil || ct.C.Sign() <= 0 || ct.C.Cmp(pk.NSquared) >= 0 {
		return ErrInvalidCiphertext
	}
	return nil
}

// Sub returns the homomorphic difference a - b, computed by multiplying a
// with the modular inverse of b. It errors — never panics — on
// out-of-range inputs and on a subtrahend that is not invertible modulo n²
// (gcd(b, n) ≠ 1 would reveal a factor of n; such a value can only come
// from a corrupted or hostile peer).
func (pk *PublicKey) Sub(a, b Ciphertext) (Ciphertext, error) {
	if err := pk.ValidateCiphertext(a); err != nil {
		return Ciphertext{}, err
	}
	if err := pk.ValidateCiphertext(b); err != nil {
		return Ciphertext{}, err
	}
	inv := new(big.Int).ModInverse(b.C, pk.NSquared)
	if inv == nil {
		return Ciphertext{}, errors.New("paillier: subtrahend not invertible modulo n²")
	}
	inv.Mul(inv, a.C)
	inv.Mod(inv, pk.NSquared)
	return Ciphertext{C: inv}, nil
}

// MulScalar returns the ciphertext of k·m given the ciphertext of m: the
// SMul operation. Any k outside [0, n) — negative or oversized, as packing
// shifts can be — is reduced modulo n first, so the exponentiation never
// pays for more than n's width. Invalid ciphertexts error, never panic.
func (pk *PublicKey) MulScalar(ct Ciphertext, k *big.Int) (Ciphertext, error) {
	if err := pk.ValidateCiphertext(ct); err != nil {
		return Ciphertext{}, err
	}
	e := k
	if k.Sign() < 0 || k.Cmp(pk.N) >= 0 {
		e = new(big.Int).Mod(k, pk.N)
	}
	return Ciphertext{C: new(big.Int).Exp(ct.C, e, pk.NSquared)}, nil
}

// EncryptZero returns a deterministic, non-obfuscated encryption of zero
// (the identity element for Add). It is used to initialize histogram bins;
// bins that are about to be accumulated with obfuscated ciphertexts do not
// need their own obfuscation.
func (pk *PublicKey) EncryptZero() Ciphertext {
	return Ciphertext{C: big.NewInt(1)}
}

// Decrypt recovers the plaintext in [0, n) using CRT acceleration.
func (priv *PrivateKey) Decrypt(ct Ciphertext) (*big.Int, error) {
	if err := priv.ValidateCiphertext(ct); err != nil {
		return nil, err
	}
	// mp = L_p(c^{p-1} mod p²)·hp mod p
	cp := new(big.Int).Exp(ct.C, priv.pOrder, priv.pSquared)
	mp := lFunc(cp, priv.p)
	mp.Mul(mp, priv.hp)
	mp.Mod(mp, priv.p)
	// mq = L_q(c^{q-1} mod q²)·hq mod q
	cq := new(big.Int).Exp(ct.C, priv.qOrder, priv.qSquared)
	mq := lFunc(cq, priv.q)
	mq.Mul(mq, priv.hq)
	mq.Mod(mq, priv.q)
	// CRT combine: m = mp + p·((mq - mp)·p^{-1} mod q)
	u := new(big.Int).Sub(mq, mp)
	u.Mul(u, priv.pInvQ)
	u.Mod(u, priv.q)
	u.Mul(u, priv.p)
	u.Add(u, mp)
	return u, nil
}

// DecryptInt64 decrypts and interprets plaintexts in the upper half of
// [0, n) as negative numbers, the inverse of EncryptInt64.
func (priv *PrivateKey) DecryptInt64(ct Ciphertext) (int64, error) {
	m, err := priv.Decrypt(ct)
	if err != nil {
		return 0, err
	}
	if m.Cmp(priv.halfN) > 0 {
		m.Sub(m, priv.N)
	}
	if !m.IsInt64() {
		return 0, errors.New("paillier: plaintext does not fit in int64")
	}
	return m.Int64(), nil
}

// Signed maps a plaintext in [0, n) to its signed representative in
// (-n/2, n/2], which is how negative encoded values are recovered.
func (pk *PublicKey) Signed(m *big.Int) *big.Int {
	if m.Cmp(pk.halfN) > 0 {
		return new(big.Int).Sub(m, pk.N)
	}
	return m
}

// Bits returns the modulus size S in bits.
func (pk *PublicKey) Bits() int { return pk.N.BitLen() }
