package wire

import "sync"

// Pooled frame buffers. Ciphertext-heavy messages (gradient batches,
// histograms) encode into multi-kilobyte frames at a high rate; recycling
// the buffers keeps the encoder allocation-free in steady state.
//
// Ownership contract: the sender encodes into a GetBuf buffer and hands it
// to the transport; the buffer then belongs to the delivery path. The
// receiving link returns it via PutBuf after decoding — which is safe only
// because Dec copies every slice it hands out, never aliasing the frame.

// maxPooledCap bounds what the pool retains, so one outsized frame (a
// whole-dataset gradient batch) does not pin its buffer forever.
const maxPooledCap = 4 << 20

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// GetBuf returns an empty buffer with pooled capacity.
func GetBuf() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// GetBufN returns a buffer of length n (contents unspecified).
func GetBufN(n int) []byte {
	b := *bufPool.Get().(*[]byte)
	if cap(b) < n {
		// Round up so one hot message size reuses cleanly.
		b = make([]byte, n)
		return b
	}
	return b[:n]
}

// PutBuf recycles a buffer obtained from GetBuf/GetBufN. Buffers that grew
// beyond maxPooledCap are dropped for the GC. Safe to call with nil.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
