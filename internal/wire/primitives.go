package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Primitive encoders (Append*) and the error-latching decoder (Dec) the
// per-message AppendTo/DecodeFrom implementations are built from. All
// variable-size integers use the standard varint encodings; float64 is
// fixed 8-byte big-endian IEEE 754; byte slices are length-prefixed.
// Decoders bound every declared count by the bytes actually remaining, so
// a malformed frame fails with an error instead of a huge allocation or a
// panic — the property FuzzWireDecode holds us to.

// Byte-slice-sequence layout modes. Ciphertext batches are almost always
// uniform (every ciphertext of one scheme marshals to the same width), so
// sliceUniform elides the per-element length prefixes; sliceSparse keeps
// the win when empty bins (exact zeros, encoded as nil payloads) are
// interleaved with uniform ciphertexts.
const (
	sliceGeneral byte = 0 // per-element length prefixes
	sliceUniform byte = 1 // one shared length, bodies concatenated
	sliceSparse  byte = 2 // shared length + presence bitmap; absent = nil
)

// maxElems bounds any decoded element count as a second line of defense
// behind the remaining-bytes checks.
const maxElems = 1 << 26

// AppendUvarint appends an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendVarint appends a zigzag varint.
func AppendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// AppendInt appends an int as a zigzag varint.
func AppendInt(b []byte, v int) []byte { return binary.AppendVarint(b, int64(v)) }

// AppendInt32 appends an int32 as a zigzag varint.
func AppendInt32(b []byte, v int32) []byte { return binary.AppendVarint(b, int64(v)) }

// AppendInt16 appends an int16 as a zigzag varint (fixed-point exponents
// are near zero, so this is one byte almost always).
func AppendInt16(b []byte, v int16) []byte { return binary.AppendVarint(b, int64(v)) }

// AppendByte appends one raw byte.
func AppendByte(b []byte, v byte) []byte { return append(b, v) }

// AppendBool appends a bool as one byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendFloat64 appends a float64 as 8 big-endian bytes.
func AppendFloat64(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends a length-prefixed byte slice (nil and empty encode
// identically, as length zero).
func AppendBytes(b, v []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// AppendByteSlices appends a sequence of byte slices, choosing the layout
// mode: uniform ciphertext batches lose their per-element prefixes,
// uniform-with-gaps batches (empty bins) carry a presence bitmap, and
// anything irregular falls back to per-element prefixes.
func AppendByteSlices(b []byte, s [][]byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	if len(s) == 0 {
		return b
	}
	sharedLen := -1
	uniform := true
	hasEmpty := false
	for _, e := range s {
		if len(e) == 0 {
			hasEmpty = true
			continue
		}
		if sharedLen == -1 {
			sharedLen = len(e)
		} else if len(e) != sharedLen {
			uniform = false
			break
		}
	}
	switch {
	case uniform && sharedLen == -1:
		// Every element empty: uniform with shared length zero.
		b = append(b, sliceUniform)
		b = binary.AppendUvarint(b, 0)
	case uniform && !hasEmpty:
		b = append(b, sliceUniform)
		b = binary.AppendUvarint(b, uint64(sharedLen))
		for _, e := range s {
			b = append(b, e...)
		}
	case uniform:
		b = append(b, sliceSparse)
		b = binary.AppendUvarint(b, uint64(sharedLen))
		off := len(b)
		b = append(b, make([]byte, (len(s)+7)/8)...)
		for i, e := range s {
			if len(e) > 0 {
				b[off+i/8] |= 1 << (i % 8)
			}
		}
		for _, e := range s {
			b = append(b, e...)
		}
	default:
		b = append(b, sliceGeneral)
		for _, e := range s {
			b = AppendBytes(b, e)
		}
	}
	return b
}

// AppendInt16s appends a count-prefixed []int16 of zigzag varints.
func AppendInt16s(b []byte, s []int16) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	for _, v := range s {
		b = binary.AppendVarint(b, int64(v))
	}
	return b
}

// AppendInt32s appends a count-prefixed []int32 of zigzag varints.
func AppendInt32s(b []byte, s []int32) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	for _, v := range s {
		b = binary.AppendVarint(b, int64(v))
	}
	return b
}

// AppendUint64s appends a count-prefixed []uint64 of varints.
func AppendUint64s(b []byte, s []uint64) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	for _, v := range s {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

// Dec is an error-latching decoder over one frame body: after the first
// failure every subsequent read returns a zero value, and Finish reports
// the latched error (or trailing garbage). Decoded slices and strings are
// always copies — the frame buffer can be pooled the moment DecodeFrom
// returns.
type Dec struct {
	b   []byte
	err error
}

// NewDec starts decoding a frame body.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Finish returns the latched error, or an error if undecoded bytes remain
// (a length/content mismatch that would otherwise pass silently).
func (d *Dec) Finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after message body", len(d.b))
	}
	return nil
}

// Fail latches a decode error (the first failure wins); composite
// decoders built on Dec use it for their own bounds checks.
func (d *Dec) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (d *Dec) fail(format string, args ...any) { d.Fail(format, args...) }

// Remaining returns the undecoded byte count — the bound every declared
// element count must respect.
func (d *Dec) Remaining() int { return len(d.b) }

func (d *Dec) remaining() int { return len(d.b) }

// take consumes n raw bytes without copying; callers must copy before the
// frame buffer is released.
func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b) {
		d.fail("need %d bytes, have %d", n, len(d.b))
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Varint reads a zigzag varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Int reads an int-sized zigzag varint.
func (d *Dec) Int() int { return int(d.Varint()) }

// Int32 reads an int32, failing on overflow.
func (d *Dec) Int32() int32 {
	v := d.Varint()
	if v < math.MinInt32 || v > math.MaxInt32 {
		d.fail("value %d overflows int32", v)
		return 0
	}
	return int32(v)
}

// Int16 reads an int16, failing on overflow.
func (d *Dec) Int16() int16 {
	v := d.Varint()
	if v < math.MinInt16 || v > math.MaxInt16 {
		d.fail("value %d overflows int16", v)
		return 0
	}
	return int16(v)
}

// Byte reads one raw byte.
func (d *Dec) Byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte bool, failing on values other than 0 or 1.
func (d *Dec) Bool() bool {
	switch d.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid bool byte")
		return false
	}
}

// Float64 reads an 8-byte big-endian float64.
func (d *Dec) Float64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

// String reads a length-prefixed string (copied).
func (d *Dec) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.remaining()) {
		d.fail("string of %d bytes, only %d remain", n, d.remaining())
		return ""
	}
	return string(d.take(int(n)))
}

// Bytes reads a length-prefixed byte slice. Zero length decodes as nil
// (matching gob's round-trip of empty slices, and the protocol's "empty
// payload means exact zero" bins).
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(d.remaining()) {
		d.fail("byte slice of %d bytes, only %d remain", n, d.remaining())
		return nil
	}
	raw := d.take(int(n))
	return append([]byte(nil), raw...)
}

// ByteSlices reads a sequence written by AppendByteSlices. Zero count
// decodes as nil.
func (d *Dec) ByteSlices() [][]byte {
	count := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if count == 0 {
		return nil
	}
	if count > maxElems {
		d.fail("byte-slice count %d exceeds limit", count)
		return nil
	}
	mode := d.Byte()
	if d.err != nil {
		return nil
	}
	switch mode {
	case sliceGeneral:
		// Each element costs at least its one-byte length prefix.
		if count > uint64(d.remaining()) {
			d.fail("%d byte slices, only %d bytes remain", count, d.remaining())
			return nil
		}
		out := make([][]byte, count)
		for i := range out {
			out[i] = d.Bytes()
		}
		if d.err != nil {
			return nil
		}
		return out
	case sliceUniform:
		sharedLen := d.Uvarint()
		if d.err != nil {
			return nil
		}
		// Bounding sharedLen alone first keeps sharedLen*count (count is
		// already capped by maxElems) from overflowing uint64.
		if sharedLen > uint64(d.remaining()) || sharedLen*count > uint64(d.remaining()) {
			d.fail("%d uniform slices of %d bytes, only %d remain", count, sharedLen, d.remaining())
			return nil
		}
		out := make([][]byte, count)
		if sharedLen == 0 {
			return out
		}
		flat := append([]byte(nil), d.take(int(sharedLen*count))...)
		for i := range out {
			out[i] = flat[uint64(i)*sharedLen : uint64(i+1)*sharedLen : uint64(i+1)*sharedLen]
		}
		return out
	case sliceSparse:
		sharedLen := d.Uvarint()
		if d.err != nil {
			return nil
		}
		if sharedLen == 0 || sharedLen > uint64(d.remaining()) {
			d.fail("sparse byte slices with shared length %d (%d bytes remain)", sharedLen, d.remaining())
			return nil
		}
		bitmap := d.take(int((count + 7) / 8))
		if d.err != nil {
			return nil
		}
		present := uint64(0)
		for i := uint64(0); i < count; i++ {
			if bitmap[i/8]&(1<<(i%8)) != 0 {
				present++
			}
		}
		if sharedLen*present > uint64(d.remaining()) {
			d.fail("%d present slices of %d bytes, only %d remain", present, sharedLen, d.remaining())
			return nil
		}
		flat := append([]byte(nil), d.take(int(sharedLen*present))...)
		out := make([][]byte, count)
		next := uint64(0)
		for i := uint64(0); i < count; i++ {
			if bitmap[i/8]&(1<<(i%8)) != 0 {
				out[i] = flat[next*sharedLen : (next+1)*sharedLen : (next+1)*sharedLen]
				next++
			}
		}
		return out
	default:
		d.fail("unknown byte-slice layout mode %d", mode)
		return nil
	}
}

// Int16s reads a count-prefixed []int16. Zero count decodes as nil.
func (d *Dec) Int16s() []int16 {
	count := d.Uvarint()
	if d.err != nil || count == 0 {
		return nil
	}
	if count > uint64(d.remaining()) {
		d.fail("%d int16s, only %d bytes remain", count, d.remaining())
		return nil
	}
	out := make([]int16, count)
	for i := range out {
		out[i] = d.Int16()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Int32s reads a count-prefixed []int32. Zero count decodes as nil.
func (d *Dec) Int32s() []int32 {
	count := d.Uvarint()
	if d.err != nil || count == 0 {
		return nil
	}
	if count > uint64(d.remaining()) {
		d.fail("%d int32s, only %d bytes remain", count, d.remaining())
		return nil
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = d.Int32()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Uint64s reads a count-prefixed []uint64. Zero count decodes as nil.
func (d *Dec) Uint64s() []uint64 {
	count := d.Uvarint()
	if d.err != nil || count == 0 {
		return nil
	}
	if count > uint64(d.remaining()) {
		d.fail("%d uint64s, only %d bytes remain", count, d.remaining())
		return nil
	}
	out := make([]uint64, count)
	for i := range out {
		out[i] = d.Uvarint()
	}
	if d.err != nil {
		return nil
	}
	return out
}
