package wire

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

func TestScalarPrimitivesRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 1<<40)
	b = AppendVarint(b, -77)
	b = AppendInt(b, -123456)
	b = AppendInt32(b, -40000)
	b = AppendInt16(b, -8)
	b = AppendByte(b, 0xAB)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendFloat64(b, -3.25)
	b = AppendString(b, "héllo")
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendBytes(b, nil)

	d := NewDec(b)
	if got := d.Uvarint(); got != 1<<40 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := d.Varint(); got != -77 {
		t.Errorf("Varint = %d", got)
	}
	if got := d.Int(); got != -123456 {
		t.Errorf("Int = %d", got)
	}
	if got := d.Int32(); got != -40000 {
		t.Errorf("Int32 = %d", got)
	}
	if got := d.Int16(); got != -8 {
		t.Errorf("Int16 = %d", got)
	}
	if got := d.Byte(); got != 0xAB {
		t.Errorf("Byte = %x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Errorf("Bool round trip broken")
	}
	if got := d.Float64(); got != -3.25 {
		t.Errorf("Float64 = %v", got)
	}
	if got := d.String(); got != "héllo" {
		t.Errorf("String = %q", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := d.Bytes(); got != nil {
		t.Errorf("empty Bytes should decode nil, got %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestByteSlicesLayoutModes(t *testing.T) {
	cases := map[string][][]byte{
		"nil":           nil,
		"general":       {{1}, {2, 3}, {4, 5, 6}},
		"uniform":       {{1, 2}, {3, 4}, {5, 6}},
		"sparse":        {{1, 2}, nil, {5, 6}, nil},
		"all-empty":     {nil, nil, nil},
		"single":        {{9, 9, 9}},
		"general-empty": {{1}, nil, {2, 3}},
	}
	for name, in := range cases {
		b := AppendByteSlices(nil, in)
		d := NewDec(b)
		got := d.ByteSlices()
		if err := d.Finish(); err != nil {
			t.Fatalf("%s: Finish: %v", name, err)
		}
		want := in
		if len(in) == 0 {
			want = nil
		}
		// Empty elements decode as nil regardless of how they were built.
		norm := make([][]byte, len(want))
		for i, e := range want {
			if len(e) > 0 {
				norm[i] = e
			}
		}
		if want == nil {
			norm = nil
		}
		if !reflect.DeepEqual(got, norm) {
			t.Errorf("%s: round trip %v != %v", name, got, norm)
		}
	}
}

func TestByteSlicesUniformElidesLengths(t *testing.T) {
	// 64 ciphertexts of 32 bytes: uniform layout must beat per-element
	// prefixes by ~one byte per element.
	uniform := make([][]byte, 64)
	for i := range uniform {
		uniform[i] = bytes.Repeat([]byte{byte(i)}, 32)
	}
	ragged := make([][]byte, 64)
	copy(ragged, uniform)
	ragged[7] = []byte{1} // break uniformity
	nu := len(AppendByteSlices(nil, uniform))
	nr := len(AppendByteSlices(nil, ragged))
	if nu >= nr {
		t.Errorf("uniform layout (%d B) should be smaller than general (%d B)", nu, nr)
	}
}

func TestIntSlicesRoundTrip(t *testing.T) {
	b := AppendInt16s(nil, []int16{-3, 0, 7, 32767, -32768})
	b = AppendInt32s(b, []int32{1, -1, 1 << 30})
	b = AppendUint64s(b, []uint64{0, 1, 1 << 60})
	b = AppendInt16s(b, nil)
	d := NewDec(b)
	if got := d.Int16s(); !reflect.DeepEqual(got, []int16{-3, 0, 7, 32767, -32768}) {
		t.Errorf("Int16s = %v", got)
	}
	if got := d.Int32s(); !reflect.DeepEqual(got, []int32{1, -1, 1 << 30}) {
		t.Errorf("Int32s = %v", got)
	}
	if got := d.Uint64s(); !reflect.DeepEqual(got, []uint64{0, 1, 1 << 60}) {
		t.Errorf("Uint64s = %v", got)
	}
	if got := d.Int16s(); got != nil {
		t.Errorf("empty Int16s should decode nil, got %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderErrorsInsteadOfPanicsOrAllocs(t *testing.T) {
	cases := map[string][]byte{
		"truncated uvarint":    {0x80},
		"string too long":      AppendUvarint(nil, 1000),
		"bytes too long":       AppendUvarint(nil, 1<<40),
		"huge slice count":     AppendUvarint(nil, 1<<50), // interpreted as ByteSlices count
		"unknown layout mode":  append(AppendUvarint(nil, 2), 9, 0, 0),
		"uniform over budget":  append(AppendUvarint(nil, 4), sliceUniform, 0x7F),
		"sparse zero length":   append(AppendUvarint(nil, 2), sliceSparse, 0, 0xFF),
		"general under budget": append(AppendUvarint(nil, 200), sliceGeneral),
	}
	for name, body := range cases {
		d := NewDec(body)
		switch name {
		case "truncated uvarint":
			d.Uvarint()
		case "string too long":
			_ = d.String()
		case "bytes too long":
			d.Bytes()
		default:
			d.ByteSlices()
		}
		if d.Err() == nil {
			t.Errorf("%s: expected a decode error", name)
		}
	}
}

func TestFinishRejectsTrailingBytes(t *testing.T) {
	b := AppendInt(nil, 7)
	b = append(b, 0xFF)
	d := NewDec(b)
	d.Int()
	if err := d.Finish(); err == nil {
		t.Fatal("expected trailing-bytes error")
	}
}

func TestDecodedSlicesDoNotAliasFrame(t *testing.T) {
	b := AppendBytes(nil, []byte{1, 2, 3})
	b = AppendByteSlices(b, [][]byte{{4, 4}, {5, 5}})
	d := NewDec(b)
	one := d.Bytes()
	two := d.ByteSlices()
	for i := range b {
		b[i] = 0xEE
	}
	if !bytes.Equal(one, []byte{1, 2, 3}) {
		t.Errorf("Bytes aliases the frame: %v", one)
	}
	if !bytes.Equal(two[0], []byte{4, 4}) || !bytes.Equal(two[1], []byte{5, 5}) {
		t.Errorf("ByteSlices aliases the frame: %v", two)
	}
}

func TestDetect(t *testing.T) {
	if _, err := Detect(nil); err == nil {
		t.Error("Detect(nil) should fail")
	}
	if _, err := Detect([]byte{0x7F}); err == nil {
		t.Error("unknown tag should fail")
	}
	if c, err := Detect([]byte{TagBinaryV1}); err != nil || c != Binary {
		t.Errorf("binary tag: %v %v", c, err)
	}
	if c, err := Detect([]byte{TagGob}); err != nil || c != Gob {
		t.Errorf("gob tag: %v %v", c, err)
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]Codec{"": Default, "binary": Binary, "gob": Gob} {
		if c, err := ByName(name); err != nil || c != want {
			t.Errorf("ByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := ByName("protobuf"); err == nil {
		t.Error("unknown codec name should fail")
	}
}

// testMsg exercises the frame layer without core's message set. The high
// ID keeps it clear of the protocol's range.
type testMsg struct {
	A int
	B []byte
}

const testMsgID uint16 = 60000

func (testMsg) WireID() uint16 { return testMsgID }
func (m testMsg) AppendTo(b []byte) []byte {
	b = AppendInt(b, m.A)
	return AppendBytes(b, m.B)
}
func (m *testMsg) DecodeFrom(body []byte) error {
	d := NewDec(body)
	m.A = d.Int()
	m.B = d.Bytes()
	return d.Finish()
}

func init() {
	Register(testMsgID, "testMsg", func(body []byte) (any, error) {
		var m testMsg
		if err := m.DecodeFrom(body); err != nil {
			return nil, err
		}
		return m, nil
	})
}

func TestBinaryFrameRoundTrip(t *testing.T) {
	in := testMsg{A: -42, B: []byte{9, 8, 7}}
	payload, err := Binary.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if payload[0] != TagBinaryV1 {
		t.Fatalf("frame tag = %x", payload[0])
	}
	out, err := Binary.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
	PutBuf(payload)
}

func TestBinaryFrameErrors(t *testing.T) {
	good, err := Binary.Encode(testMsg{A: 1, B: []byte{2}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"short header":     good[:3],
		"bad version":      append([]byte{0x7E}, good[1:]...),
		"length mismatch":  append(append([]byte{}, good...), 0xFF),
		"unknown id":       append([]byte{TagBinaryV1, 0xFF, 0xFE}, good[3:]...),
		"corrupt body":     append(append([]byte{}, good[:7]...), 0x80), // truncated varint, patched length
		"not a wire frame": {0x42, 0x00},
	}
	// Fix up the corrupt-body case's declared length.
	cb := cases["corrupt body"]
	cb[3], cb[4], cb[5], cb[6] = 0, 0, 0, 1
	for name, payload := range cases {
		if _, err := Binary.Decode(payload); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
	if _, err := Binary.Encode(struct{}{}); err == nil {
		t.Error("encoding a non-Message should fail")
	}
}

// gobMsg is registered with gob in TestGobCodecRoundTrip's init path; the
// fallback codec relies on the same global gob registrations the envelope
// always used (core registers its protocol messages).
type gobMsg struct{ X int }

func init() { gob.Register(gobMsg{}) }

func TestGobCodecRoundTrip(t *testing.T) {
	payload, err := Gob.Encode(gobMsg{X: 7})
	if err != nil {
		t.Fatal(err)
	}
	if payload[0] != TagGob {
		t.Fatalf("frame tag = %x", payload[0])
	}
	out, err := Gob.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out != (gobMsg{X: 7}) {
		t.Fatalf("round trip = %v", out)
	}
	if _, err := Gob.Decode([]byte{TagGob, 0xFF, 0x01}); err == nil {
		t.Error("corrupt gob frame should fail")
	}
}

func TestBufferPoolRecycles(t *testing.T) {
	b := GetBufN(100)
	if len(b) != 100 {
		t.Fatalf("GetBufN length = %d", len(b))
	}
	PutBuf(b)
	PutBuf(nil) // must not panic
	big := make([]byte, maxPooledCap+1)
	PutBuf(big) // over the cap: dropped, must not panic
	c := GetBuf()
	if len(c) != 0 {
		t.Fatalf("GetBuf should be empty, got %d", len(c))
	}
}

func TestMessageNamesSorted(t *testing.T) {
	names := MessageNames()
	if len(names) == 0 {
		t.Fatal("no registered messages")
	}
	ids := MessageIDs()
	if _, ok := ids[testMsgID]; !ok {
		t.Fatal("test message missing from registry")
	}
}
