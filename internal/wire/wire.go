// Package wire implements the cross-party message codec: a versioned,
// length-prefixed binary frame format with stable numeric message IDs and
// hand-written per-message encoders, plus the reflective gob envelope kept
// as a negotiated fallback. The binary codec exists because histogram and
// gradient traffic dominates a federated training run (the paper makes
// ciphertext transfer a first-order cost): gob re-transmits its type
// metadata on every message and double-buffers through reflection, while
// the binary codec appends straight into a pooled buffer.
//
// Frame layouts (the first payload byte names the codec, so both formats
// coexist on one link and a receiver can adopt whatever its peer speaks):
//
//	binary: 0x01 | uint16 message ID (BE) | uint32 body length (BE) | body
//	gob:    0x00 | gob(envelope{M})
//
// Message bodies are encoded by the messages themselves (AppendTo /
// DecodeFrom); this package owns the frame, the codec registry, the
// primitive encoders (primitives.go), and the buffer pool (pool.go).
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"
)

// Frame tag bytes. TagBinaryV1 doubles as the binary format version:
// an incompatible revision gets a new tag, and a receiver that sees an
// unknown tag fails loudly instead of guessing.
const (
	TagGob      byte = 0x00
	TagBinaryV1 byte = 0x01
)

// headerSize is the binary frame header: tag byte, message ID, body length.
const headerSize = 1 + 2 + 4

// MaxBody bounds a binary frame body, mirroring the TCP gateway's frame
// limit so a corrupt length field fails fast instead of allocating.
const MaxBody = 64 << 20

// Codec turns protocol messages into transport payloads and back. Encode
// may return a buffer from this package's pool; the receiving side gives
// it back via PutBuf after Decode (Decode never aliases the payload).
type Codec interface {
	Name() string
	Encode(m any) ([]byte, error)
	Decode(payload []byte) (any, error)
}

// Message is implemented by every protocol message that the binary codec
// can carry. WireID returns the message's stable numeric ID (never
// renumbered; new messages append new IDs) and AppendTo appends the body
// encoding to b, returning the extended slice.
type Message interface {
	WireID() uint16
	AppendTo(b []byte) []byte
}

// entry is one registered message type.
type entry struct {
	name   string
	decode func(body []byte) (any, error)
}

// registry maps message IDs to decoders. Populated from init functions
// (package core registers its messages), read-only afterwards.
var registry = map[uint16]entry{}

// Register installs the decoder for one message ID. decode receives the
// frame body and returns the message value (not a pointer: protocol code
// type-switches on values). Duplicate registration is a programming error.
func Register(id uint16, name string, decode func(body []byte) (any, error)) {
	if prev, dup := registry[id]; dup {
		panic(fmt.Sprintf("wire: message ID %d registered twice (%s, %s)", id, prev.name, name))
	}
	registry[id] = entry{name: name, decode: decode}
}

// MessageIDs returns the registered IDs in ascending order with their
// names — the protocol documentation's message-ID table, kept honest by
// tests.
func MessageIDs() map[uint16]string {
	out := make(map[uint16]string, len(registry))
	for id, e := range registry {
		out[id] = e.name
	}
	return out
}

// MessageNames lists "id name" lines in ID order (for docs and debugging).
func MessageNames() []string {
	ids := make([]int, 0, len(registry))
	for id := range registry {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, fmt.Sprintf("%d %s", id, registry[uint16(id)].name))
	}
	return out
}

// Binary is the default codec: explicit per-message encoders into pooled
// buffers, no reflection, no per-message type metadata.
var Binary Codec = binaryCodec{}

// Gob is the fallback codec: the reflective envelope the protocol
// originally spoke. Kept for compatibility and as the negotiation escape
// hatch; every message registered with gob.Register still round-trips.
var Gob Codec = gobCodec{}

// Default is the codec a link speaks when nothing was negotiated.
var Default = Binary

// ByName resolves a codec by its configuration name; the empty string
// selects the default.
func ByName(name string) (Codec, error) {
	switch name {
	case "":
		return Default, nil
	case "binary":
		return Binary, nil
	case "gob":
		return Gob, nil
	default:
		return nil, fmt.Errorf("wire: unknown codec %q (want binary or gob)", name)
	}
}

// Detect returns the codec that produced a payload by its frame tag.
func Detect(payload []byte) (Codec, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("wire: empty frame")
	}
	switch payload[0] {
	case TagGob:
		return Gob, nil
	case TagBinaryV1:
		return Binary, nil
	default:
		return nil, fmt.Errorf("wire: unknown frame tag 0x%02x", payload[0])
	}
}

type binaryCodec struct{}

func (binaryCodec) Name() string { return "binary" }

func (binaryCodec) Encode(m any) ([]byte, error) {
	msg, ok := m.(Message)
	if !ok {
		return nil, fmt.Errorf("wire: %T does not implement wire.Message", m)
	}
	b := GetBuf()
	b = append(b, TagBinaryV1)
	b = binary.BigEndian.AppendUint16(b, msg.WireID())
	b = append(b, 0, 0, 0, 0) // body length backfilled below
	b = msg.AppendTo(b)
	body := len(b) - headerSize
	if body > MaxBody {
		PutBuf(b)
		return nil, fmt.Errorf("wire: %T body of %d bytes exceeds %d-byte frame limit", m, body, MaxBody)
	}
	binary.BigEndian.PutUint32(b[3:headerSize], uint32(body))
	return b, nil
}

func (binaryCodec) Decode(payload []byte) (any, error) {
	if len(payload) < headerSize {
		return nil, fmt.Errorf("wire: binary frame of %d bytes shorter than %d-byte header", len(payload), headerSize)
	}
	if payload[0] != TagBinaryV1 {
		return nil, fmt.Errorf("wire: unsupported binary frame version 0x%02x", payload[0])
	}
	id := binary.BigEndian.Uint16(payload[1:3])
	n := binary.BigEndian.Uint32(payload[3:headerSize])
	body := payload[headerSize:]
	if uint64(n) != uint64(len(body)) {
		return nil, fmt.Errorf("wire: frame declares %d body bytes, carries %d", n, len(body))
	}
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("wire: unknown message ID %d", id)
	}
	m, err := e.decode(body)
	if err != nil {
		return nil, fmt.Errorf("wire: decoding %s: %w", e.name, err)
	}
	return m, nil
}

// gobEnvelope wraps a message for the gob fallback, matching the envelope
// shape the protocol spoke before the binary codec existed.
type gobEnvelope struct {
	M any
}

type gobCodec struct{}

func (gobCodec) Name() string { return "gob" }

func (gobCodec) Encode(m any) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(TagGob)
	if err := gob.NewEncoder(&buf).Encode(gobEnvelope{M: m}); err != nil {
		return nil, fmt.Errorf("wire: gob-encoding %T: %w", m, err)
	}
	return buf.Bytes(), nil
}

func (gobCodec) Decode(payload []byte) (any, error) {
	if len(payload) == 0 || payload[0] != TagGob {
		return nil, fmt.Errorf("wire: not a gob frame")
	}
	var env gobEnvelope
	if err := gob.NewDecoder(bytes.NewReader(payload[1:])).Decode(&env); err != nil {
		return nil, fmt.Errorf("wire: gob-decoding message: %w", err)
	}
	return env.M, nil
}
