package experiments

import (
	"fmt"
	"io"

	"vf2boost/internal/core"
	"vf2boost/internal/trace"
)

// GanttConfig parameterizes the schedule-comparison run behind Figures 4
// and 5: the same one-tree workload under the sequential protocol and the
// concurrent VF²Boost protocol, with every phase recorded as Gantt spans.
type GanttConfig struct {
	N       int
	FeatA   int
	FeatB   int
	NNZ     int
	KeyBits int
	Depth   int
	WANMbps float64
	Seed    int64
}

// DefaultGantt returns the configuration used by cmd/experiments.
func DefaultGantt() GanttConfig {
	return GanttConfig{
		N: 2000, FeatA: 60, FeatB: 60, NNZ: 40,
		KeyBits: 512, Depth: 3, WANMbps: 7, Seed: 11,
	}
}

// GanttResult holds the recorded spans of one protocol run.
type GanttResult struct {
	Protocol string
	Spans    []trace.Span
	WallSec  float64
}

// Gantt runs the workload under both protocols and returns their traces.
func Gantt(gc GanttConfig) ([]GanttResult, error) {
	_, parts, err := twoPartySparse(gc.N, gc.FeatA, gc.FeatB, gc.NNZ, gc.Seed)
	if err != nil {
		return nil, err
	}
	var out []GanttResult
	run := func(name string, cfg core.Config) error {
		cfg.Trees = 1
		cfg.MaxDepth = gc.Depth
		cfg.KeyBits = gc.KeyBits
		cfg.Workers = 1
		dec, err := decryptorFor(cfg.Scheme, cfg.KeyBits)
		if err != nil {
			return err
		}
		rec := trace.NewRecorder()
		s, err := core.NewSession(parts, cfg,
			core.WithDecryptor(dec), core.WithWAN(gc.WANMbps, 0), core.WithTrace(rec))
		if err != nil {
			return err
		}
		if _, err := s.Train(); err != nil {
			return err
		}
		spans := rec.Spans()
		wall := 0.0
		for _, sp := range spans {
			if sec := sp.End.Seconds(); sec > wall {
				wall = sec
			}
		}
		out = append(out, GanttResult{Protocol: name, Spans: spans, WallSec: wall})
		return nil
	}
	if err := run("sequential (VF-GBDT, Fig 4/5 top)", core.BaselineConfig()); err != nil {
		return nil, err
	}
	if err := run("concurrent (VF2Boost, Fig 4/5 bottom)", core.DefaultConfig()); err != nil {
		return nil, err
	}
	return out, nil
}

// PrintGantt renders both traces as ASCII Gantt charts.
func PrintGantt(w io.Writer, gc GanttConfig, results []GanttResult) {
	fmt.Fprintf(w, "Figures 4/5: phase schedules (N=%d, %d/%d feats, S=%d, WAN %.0f Mbps)\n",
		gc.N, gc.FeatA, gc.FeatB, gc.KeyBits, gc.WANMbps)
	for _, r := range results {
		fmt.Fprintf(w, "\n%s — %.2fs total\n", r.Protocol, r.WallSec)
		fmt.Fprint(w, trace.ASCII(r.Spans, 72))
		busy := trace.BusyTime(r.Spans)
		for lane, d := range busy {
			fmt.Fprintf(w, "  %-22s busy %6.2fs\n", lane, d.Seconds())
		}
	}
}
