package experiments

import (
	"fmt"
	"io"
	"time"

	"vf2boost/internal/core"
	"vf2boost/internal/dataset"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/metrics"
)

// Table4Row is one row of Table 4: the average per-tree training time of
// the four systems on one large-scale dataset, with the AUC comparison
// between federated, co-located, and Party-B-only training.
type Table4Row struct {
	Dataset  string
	XGBSec   float64
	MockSec  float64
	GBDTSec  float64
	VF2Sec   float64
	VF2AUC   float64
	ColocAUC float64
	BOnlyAUC float64
}

// Table4Config parameterizes the end-to-end comparison.
type Table4Config struct {
	Presets []string
	Scale   float64
	Trees   int
	// Depth and Bins shrink with the datasets: at laptop scale the
	// paper's 7 layers × 20 bins would make histogram decryption (which
	// scales with nodes × features × bins, not instances) dominate far
	// beyond its share in the paper's regime.
	Depth   int
	Bins    int
	KeyBits int
	WANMbps float64
	Seed    int64
}

// DefaultTable4 returns the scaled configuration used by cmd/experiments.
func DefaultTable4() Table4Config {
	return Table4Config{
		Presets: []string{"susy", "epsilon", "rcv1", "synthesis", "industry"},
		Scale:   1000,
		Trees:   3,
		Depth:   4,
		Bins:    10,
		KeyBits: 512,
		WANMbps: 7,
		Seed:    4,
	}
}

// Table4 runs the end-to-end comparison on each preset.
func Table4(tc Table4Config) ([]Table4Row, error) {
	if tc.Depth <= 0 {
		tc.Depth = 4
	}
	if tc.Bins <= 0 {
		tc.Bins = 10
	}
	var rows []Table4Row
	for _, name := range tc.Presets {
		joined, _, err := presetParts(name, tc.Scale, tc.Seed)
		if err != nil {
			return nil, err
		}
		train, valid := joined.TrainValidSplit(0.8, tc.Seed)
		p, _ := dataset.PresetByName(name)
		_, counts := p.Options(tc.Scale, tc.Seed)
		trainParts, err := train.VerticalSplit(counts, len(counts)-1)
		if err != nil {
			return nil, err
		}
		validParts, err := valid.VerticalSplit(counts, len(counts)-1)
		if err != nil {
			return nil, err
		}

		row := Table4Row{Dataset: name}

		// XGBoost-style non-federated baseline on the co-located table.
		lp := gbdt.DefaultParams()
		lp.NumTrees = tc.Trees
		lp.MaxDepth = tc.Depth
		lp.MaxBins = tc.Bins
		start := time.Now()
		localModel, err := gbdt.Train(train, lp)
		if err != nil {
			return nil, err
		}
		row.XGBSec = secs(time.Since(start)) / float64(tc.Trees)
		if auc, err := metrics.AUC(localModel.PredictAll(valid), valid.Labels); err == nil {
			row.ColocAUC = auc
		}

		// Party-B-only training.
		bOnly, err := gbdt.Train(trainParts[len(trainParts)-1], lp)
		if err != nil {
			return nil, err
		}
		bShardValid := validParts[len(validParts)-1]
		if auc, err := metrics.AUC(bOnly.PredictAll(bShardValid), bShardValid.Labels); err == nil {
			row.BOnlyAUC = auc
		}

		fed := func(cfg core.Config) (float64, *core.FederatedModel, error) {
			cfg.Trees = tc.Trees
			cfg.MaxDepth = tc.Depth
			cfg.MaxBins = tc.Bins
			cfg.KeyBits = tc.KeyBits
			cfg.Workers = 1
			r, err := runFed(trainParts, cfg, tc.WANMbps)
			if err != nil {
				return 0, nil, err
			}
			return secs(r.Wall) / float64(tc.Trees), r.Model, nil
		}
		if row.MockSec, _, err = fed(core.MockConfig()); err != nil {
			return nil, err
		}
		if row.GBDTSec, _, err = fed(core.BaselineConfig()); err != nil {
			return nil, err
		}
		var vf2Model *core.FederatedModel
		if row.VF2Sec, vf2Model, err = fed(core.DefaultConfig()); err != nil {
			return nil, err
		}
		if margins, err := vf2Model.PredictAll(validParts); err == nil {
			if auc, err := metrics.AUC(margins, valid.Labels); err == nil {
				row.VF2AUC = auc
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable4 renders the rows in the paper's layout.
func PrintTable4(w io.Writer, tc Table4Config, rows []Table4Row) {
	fmt.Fprintf(w, "Table 4: average per-tree time (s) and AUC; scale 1/%.0f, S=%d, T=%d, depth %d, bins %d\n",
		tc.Scale, tc.KeyBits, tc.Trees, tc.Depth, tc.Bins)
	fmt.Fprintf(w, "  %-10s | %7s %9s %9s %9s | %8s %8s %8s\n",
		"dataset", "XGB", "VF-MOCK", "VF-GBDT", "VF2Boost", "VF2 AUC", "coloc", "B-only")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s | %7.3f %9.3f %9.3f %9.3f | %8.3f %8.3f %8.3f\n",
			r.Dataset, r.XGBSec, r.MockSec, r.GBDTSec, r.VF2Sec,
			r.VF2AUC, r.ColocAUC, r.BOnlyAUC)
	}
	if len(rows) > 0 {
		fmt.Fprintf(w, "  (expected shape: XGB << VF-MOCK << VF-GBDT, VF2Boost %s VF-GBDT, VF2 AUC ~ coloc > B-only)\n",
			"faster than")
	}
}
