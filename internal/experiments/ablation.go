package experiments

import (
	"fmt"
	"io"

	"vf2boost/internal/core"
	"vf2boost/internal/dataset"
)

// AblationRow measures one extension beyond the paper (DESIGN.md §3.1b)
// against its baseline on a workload chosen to exercise it.
type AblationRow struct {
	Name        string
	BaselineSec float64
	ExtSec      float64
	Note        string
}

// AblationConfig parameterizes the extension ablations.
type AblationConfig struct {
	KeyBits int
	Seed    int64
}

// DefaultAblation returns the configuration used by cmd/experiments.
func DefaultAblation() AblationConfig { return AblationConfig{KeyBits: 512, Seed: 9} }

// Ablation measures the three extensions: encrypted histogram
// subtraction (dense two-child regime), adaptive packing (sparse deep
// regime where always-pack loses), and adaptive optimism (feature-rich
// passive party where pure optimism thrashes).
func Ablation(ac AblationConfig) ([]AblationRow, error) {
	var rows []AblationRow

	run := func(parts parts2, cfg core.Config) (float64, *core.Stats, error) {
		r, err := runFed(parts, cfg, 0)
		if err != nil {
			return 0, nil, err
		}
		return secs(r.Wall), r.Stats, nil
	}

	// 1. Histogram subtraction: dense-ish data, several layers, so both
	// children of every split would otherwise be re-accumulated.
	{
		_, p, err := twoPartySparse(2000, 60, 30, 45, ac.Seed)
		if err != nil {
			return nil, err
		}
		cfg := core.BaselineConfig()
		cfg.Trees = 1
		cfg.MaxDepth = 5
		cfg.KeyBits = ac.KeyBits
		cfg.Workers = 1
		base, _, err := run(p, cfg)
		if err != nil {
			return nil, err
		}
		cfg.HistogramSubtraction = true
		ext, _, err := run(p, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name: "HistogramSubtraction", BaselineSec: base, ExtSec: ext,
			Note: "build smaller child only; sibling = parent - child",
		})
	}

	// 2. Adaptive packing: very sparse features at depth, where packing
	// every feature costs more decrypts than the occupied bins.
	{
		_, p, err := twoPartySparse(1200, 150, 30, 10, ac.Seed+1)
		if err != nil {
			return nil, err
		}
		cfg := core.BaselineConfig()
		cfg.Trees = 1
		cfg.MaxDepth = 4
		cfg.KeyBits = ac.KeyBits
		cfg.Workers = 1
		cfg.HistogramPacking = true
		cfg.AdaptivePacking = false
		base, _, err := run(p, cfg)
		if err != nil {
			return nil, err
		}
		cfg.AdaptivePacking = true
		ext, _, err := run(p, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name: "AdaptivePacking", BaselineSec: base, ExtSec: ext,
			Note: "skip packing for features with few occupied bins",
		})
	}

	// 3. Adaptive optimism: passive party owns most features, so pure
	// optimism rolls back most splits.
	{
		_, p, err := twoPartySparse(1500, 120, 20, 30, ac.Seed+2)
		if err != nil {
			return nil, err
		}
		cfg := core.BaselineConfig()
		cfg.Trees = 4
		cfg.MaxDepth = 4
		cfg.KeyBits = ac.KeyBits
		cfg.Workers = 1
		cfg.OptimisticSplit = true
		cfg.AdaptiveOptimism = false
		base, stBase, err := run(p, cfg)
		if err != nil {
			return nil, err
		}
		cfg.AdaptiveOptimism = true
		ext, stExt, err := run(p, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name: "AdaptiveOptimism", BaselineSec: base, ExtSec: ext,
			Note: fmt.Sprintf("dirty nodes %d -> %d over 4 trees",
				stBase.DirtyNodes(), stExt.DirtyNodes()),
		})
	}
	return rows, nil
}

// parts2 aliases the session input for readability.
type parts2 = []*dataset.Dataset

// PrintAblation renders the extension ablations.
func PrintAblation(w io.Writer, ac AblationConfig, rows []AblationRow) {
	fmt.Fprintf(w, "Extension ablations (beyond the paper); S=%d\n", ac.KeyBits)
	fmt.Fprintf(w, "  %-22s | %9s %9s %8s | %s\n", "extension", "off (s)", "on (s)", "speedup", "note")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-22s | %9.2f %9.2f %7.2fx | %s\n",
			r.Name, r.BaselineSec, r.ExtSec, r.BaselineSec/r.ExtSec, r.Note)
	}
}
