package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"vf2boost/internal/dataset"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/ooc"
)

// OOCConfig parameterizes the out-of-core scale experiment: one store is
// built from a streamed synthetic source (the dataset never
// materializes), then training runs under a sweep of shard-cache
// budgets. The quantities of interest are build and train throughput
// (rows/sec), the shard-cache behavior at each budget, and the peak Go
// heap — which must stay near the budget, not near the dataset size.
type OOCConfig struct {
	Rows      int
	Cols      int
	Density   float64
	Trees     int
	Depth     int
	MaxBins   int
	ChunkRows int
	// Budgets are shard-cache caps in bytes; 0 means unlimited (the
	// everything-resident reference point).
	Budgets []int64
	Seed    int64
	// BuildWorkers parallelizes pass 2 of the store build (and chunk
	// generation in pass 1); <= 1 builds serially. The output directory
	// is byte-identical either way.
	BuildWorkers int
	// HistWorkers bounds histogram-build parallelism during the training
	// sweep; <= 0 uses one worker (the historical single-threaded
	// reference point).
	HistWorkers int
	// Dir holds the store between runs; empty uses a temp dir removed at
	// the end.
	Dir string
}

// DefaultOOC returns the sweep used by cmd/experiments and bench.sh.
func DefaultOOC() OOCConfig {
	return OOCConfig{
		Rows:      2_000_000,
		Cols:      50,
		Density:   0.2,
		Trees:     3,
		Depth:     6,
		MaxBins:   20,
		ChunkRows: 1 << 16,
		Budgets:   []int64{0, 64 << 20, 16 << 20, 4 << 20},
		Seed:      17,

		BuildWorkers: 4,
		HistWorkers:  1,
	}
}

// OOCBuild describes the store-construction pass.
type OOCBuild struct {
	Wall       time.Duration `json:"wall_ns"`
	RowsPerSec float64       `json:"rows_per_sec"`
	Shards     int           `json:"shards"`
	PeakHeap   uint64        `json:"peak_heap_bytes"`
	Workers    int           `json:"workers"`
}

// OOCRow is one budget point of the training sweep.
type OOCRow struct {
	Budget     int64         `json:"budget_bytes"`
	Wall       time.Duration `json:"wall_ns"`
	RowsPerSec float64       `json:"rows_per_sec"` // instance-rows visited per second (rows x trees / wall)
	PeakHeap   uint64        `json:"peak_heap_bytes"`
	Loads      int64         `json:"loads"`
	Prefetches int64         `json:"prefetches"`
	Evictions  int64         `json:"evictions"`
	PeakCache  int64         `json:"peak_cache_bytes"`
	// LoadsPerShardTree is Loads / (shards × trees): 1.0 means every
	// shard was read exactly once per tree — the shard-major floor is
	// depth+1 per tree (one fused sweep per level plus the margin
	// update), and the node-major schedule this experiment used to
	// measure sat around 127.
	LoadsPerShardTree float64 `json:"loads_per_shard_tree"`
	// ModelMatchesRef reports whether this budget's model is
	// byte-identical to the first run's (the unlimited-budget,
	// everything-resident reference).
	ModelMatchesRef bool `json:"model_matches_ref"`
}

// heapSampler tracks peak HeapAlloc while a measured section runs. The
// sampling interval bounds how short a spike it can see; for shard-cache
// footprints (which persist for whole tree layers) that is plenty.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func startHeapSampler() *heapSampler {
	h := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(h.done)
		var ms runtime.MemStats
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > h.peak {
				h.peak = ms.HeapAlloc
			}
			select {
			case <-h.stop:
				return
			case <-t.C:
			}
		}
	}()
	return h
}

// Stop ends sampling and returns the observed peak HeapAlloc.
func (h *heapSampler) Stop() uint64 {
	close(h.stop)
	<-h.done
	return h.peak
}

// OOCScale builds the store and runs the budget sweep.
func OOCScale(tc OOCConfig) (OOCBuild, []OOCRow, error) {
	dir := tc.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "oocscale-")
		if err != nil {
			return OOCBuild{}, nil, err
		}
		defer os.RemoveAll(dir)
	}

	src, err := ooc.NewSynthSource(dataset.GenOptions{
		Rows: tc.Rows, Cols: tc.Cols, Density: tc.Density, Seed: tc.Seed,
	})
	if err != nil {
		return OOCBuild{}, nil, err
	}

	buildWorkers := tc.BuildWorkers
	if buildWorkers < 1 {
		buildWorkers = 1
	}
	runtime.GC()
	hs := startHeapSampler()
	buildStart := time.Now()
	if err := ooc.Build(dir, src, ooc.BuildOptions{MaxBins: tc.MaxBins, ChunkRows: tc.ChunkRows, Workers: buildWorkers}); err != nil {
		hs.Stop()
		return OOCBuild{}, nil, err
	}
	buildWall := time.Since(buildStart)
	build := OOCBuild{
		Wall:       buildWall,
		RowsPerSec: float64(tc.Rows) / secs(buildWall),
		PeakHeap:   hs.Stop(),
		Workers:    buildWorkers,
	}

	p := gbdt.DefaultParams()
	p.NumTrees = tc.Trees
	p.MaxDepth = tc.Depth
	p.MaxBins = tc.MaxBins
	p.Workers = tc.HistWorkers
	if p.Workers < 1 {
		p.Workers = 1
	}

	var rows []OOCRow
	var refModel []byte
	for _, budget := range tc.Budgets {
		st, err := ooc.Open(dir, ooc.Options{MemBudget: budget, Prefetch: true})
		if err != nil {
			return build, nil, err
		}
		if build.Shards == 0 {
			build.Shards = st.NumShards()
		}
		labels, err := st.Labels()
		if err != nil {
			return build, nil, err
		}
		runtime.GC()
		hs := startHeapSampler()
		start := time.Now()
		m, err := gbdt.TrainBinned(st, labels, p)
		if err != nil {
			hs.Stop()
			return build, nil, err
		}
		wall := time.Since(start)
		cs := st.Stats()
		encoded, err := json.Marshal(m)
		if err != nil {
			hs.Stop()
			return build, nil, err
		}
		if refModel == nil {
			refModel = encoded
		}
		rows = append(rows, OOCRow{
			Budget:            budget,
			Wall:              wall,
			RowsPerSec:        float64(tc.Rows) * float64(tc.Trees) / secs(wall),
			PeakHeap:          hs.Stop(),
			Loads:             cs.Loads,
			Prefetches:        cs.Prefetches,
			Evictions:         cs.Evictions,
			PeakCache:         cs.PeakBytes,
			LoadsPerShardTree: float64(cs.Loads) / float64(st.NumShards()*tc.Trees),
			ModelMatchesRef:   string(encoded) == string(refModel),
		})
	}
	return build, rows, nil
}

// PrintOOC renders the sweep.
func PrintOOC(w io.Writer, tc OOCConfig, build OOCBuild, rows []OOCRow) {
	fmt.Fprintf(w, "Out-of-core scale: %d x %d (density %.2f), T=%d depth %d, %d shards of %d rows\n",
		tc.Rows, tc.Cols, tc.Density, tc.Trees, tc.Depth, build.Shards, tc.ChunkRows)
	fmt.Fprintf(w, "  build: %v (%.0f rows/s, %d workers), peak heap %s\n",
		build.Wall.Round(time.Millisecond), build.RowsPerSec, build.Workers, fmtBytes(int64(build.PeakHeap)))
	fmt.Fprintf(w, "  %-10s | %10s | %12s | %10s | %7s | %8s | %5s | %7s | %10s | %5s\n",
		"budget", "wall", "rows/s", "peak heap", "loads", "ld/sh·t", "pref", "evict", "peak cache", "model")
	for _, r := range rows {
		budget := "unlimited"
		if r.Budget > 0 {
			budget = fmtBytes(r.Budget)
		}
		match := "match"
		if !r.ModelMatchesRef {
			match = "DRIFT"
		}
		fmt.Fprintf(w, "  %-10s | %10v | %12.0f | %10s | %7d | %8.2f | %5d | %7d | %10s | %5s\n",
			budget, r.Wall.Round(time.Millisecond), r.RowsPerSec,
			fmtBytes(int64(r.PeakHeap)), r.Loads, r.LoadsPerShardTree,
			r.Prefetches, r.Evictions, fmtBytes(r.PeakCache), match)
	}
}

// fmtBytes renders a byte count with a binary suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// oocBench is the BENCH_ooc.json schema.
type oocBench struct {
	Date   string      `json:"date"`
	Config OOCConfig   `json:"config"`
	Build  OOCBuild    `json:"build"`
	Runs   []OOCRow    `json:"runs"`
	Host   oocBenchEnv `json:"host"`
}

type oocBenchEnv struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
}

// WriteOOCJSON writes the sweep as the committed BENCH_ooc.json baseline.
func WriteOOCJSON(w io.Writer, date string, tc OOCConfig, build OOCBuild, rows []OOCRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(oocBench{
		Date:   date,
		Config: tc,
		Build:  build,
		Runs:   rows,
		Host:   oocBenchEnv{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU()},
	})
}
