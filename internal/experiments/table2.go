package experiments

import (
	"fmt"
	"io"

	"vf2boost/internal/core"
)

// Table2Row is one row of Table 2: the time to build one full decision
// tree under the baseline and with the optimistic node-splitting and
// histogram packing optimizations, at a given feature split between the
// parties.
type Table2Row struct {
	FeatA, FeatB  int
	RatioB        float64 // fraction of splits won by Party B (baseline run)
	DirtyRate     float64 // dirty fraction of optimistic splits
	BaselineSec   float64
	OptimSec      float64
	PackSec       float64
	BothSec       float64
	BytesBaseline int64
	BytesPack     int64
}

// Table2Config parameterizes the sweep: the paper fixes N = 10M and
// sweeps the feature split {40K/10K, 25K/25K, 10K/40K}; here both shrink
// by the same scale.
type Table2Config struct {
	N         int
	Splits    [][2]int
	NNZPerRow int
	KeyBits   int
	MaxDepth  int
	MaxBins   int
	// MinChildHess keeps splits from isolating single instances, which
	// at laptop scale would otherwise produce degenerate tied gains
	// (impossible at the paper's N=10M).
	MinChildHess float64
	WANMbps      float64
	Seed         int64
}

// DefaultTable2 returns the scaled sweep used by cmd/experiments.
func DefaultTable2() Table2Config {
	return Table2Config{
		N:            3000,
		Splits:       [][2]int{{200, 50}, {125, 125}, {50, 200}},
		NNZPerRow:    60,
		KeyBits:      512,
		MaxDepth:     4,
		MaxBins:      10,
		MinChildHess: 1,
		WANMbps:      7,
		Seed:         2,
	}
}

// Table2 measures one-tree training time for the four configurations at
// each feature split.
func Table2(tc Table2Config) ([]Table2Row, error) {
	var rows []Table2Row
	for _, split := range tc.Splits {
		_, parts, err := twoPartySparse(tc.N, split[0], split[1], tc.NNZPerRow, tc.Seed)
		if err != nil {
			return nil, err
		}
		base := core.BaselineConfig()
		base.Trees = 1
		base.MaxDepth = tc.MaxDepth
		base.MaxBins = tc.MaxBins
		base.KeyBits = tc.KeyBits
		base.Split.MinChildHess = tc.MinChildHess
		base.Workers = 1
		// AdaptivePacking stays on so packing skips the (few) sparse
		// features where it cannot pay off at this scale.
		base.AdaptivePacking = true
		// Blaster stays off in all four configurations, as in the paper's
		// Table 2 (it isolates OptimSplit and HistPack).

		row := Table2Row{FeatA: split[0], FeatB: split[1]}

		r, err := runFed(parts, base, tc.WANMbps)
		if err != nil {
			return nil, err
		}
		row.BaselineSec = secs(r.Wall)
		row.BytesBaseline = r.Bytes
		if a, b := r.Stats.SplitsByA(), r.Stats.SplitsByB(); a+b > 0 {
			row.RatioB = float64(b) / float64(a+b)
		}

		variant := func(optim, pack bool) (FedRun, error) {
			cfg := base
			cfg.OptimisticSplit = optim
			cfg.HistogramPacking = pack
			return runFed(parts, cfg, tc.WANMbps)
		}
		ro, err := variant(true, false)
		if err != nil {
			return nil, err
		}
		row.OptimSec = secs(ro.Wall)
		if s := ro.Stats.SplitsByA() + ro.Stats.SplitsByB(); s > 0 {
			row.DirtyRate = float64(ro.Stats.DirtyNodes()) / float64(s)
		}
		rp, err := variant(false, true)
		if err != nil {
			return nil, err
		}
		row.PackSec = secs(rp.Wall)
		row.BytesPack = rp.Bytes
		rb, err := variant(true, true)
		if err != nil {
			return nil, err
		}
		row.BothSec = secs(rb.Wall)

		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable2 renders the rows in the paper's layout.
func PrintTable2(w io.Writer, tc Table2Config, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2: one-tree training (s); N=%d, S=%d, depth %d, WAN %.0f Mbps\n",
		tc.N, tc.KeyBits, tc.MaxDepth, tc.WANMbps)
	fmt.Fprintf(w, "  %-9s | %7s %6s | %8s | %-16s %-16s %-16s\n",
		"#Feat A/B", "RatioB", "Dirty", "Baseline", "+OptimSplit", "+HistPack", "+Both")
	for _, r := range rows {
		fmt.Fprintf(w, "  %4d/%-4d | %6.1f%% %5.1f%% | %8.2f | %7.2f (%4.2fx)  %7.2f (%4.2fx)  %7.2f (%4.2fx)\n",
			r.FeatA, r.FeatB, 100*r.RatioB, 100*r.DirtyRate, r.BaselineSec,
			r.OptimSec, r.BaselineSec/r.OptimSec,
			r.PackSec, r.BaselineSec/r.PackSec,
			r.BothSec, r.BaselineSec/r.BothSec)
	}
	if len(rows) > 0 && rows[0].BytesPack > 0 {
		fmt.Fprintf(w, "  network per tree: %.1f MiB baseline -> %.1f MiB packed (%.0f%% saved)\n",
			float64(rows[0].BytesBaseline)/(1<<20), float64(rows[0].BytesPack)/(1<<20),
			100*(1-float64(rows[0].BytesPack)/float64(rows[0].BytesBaseline)))
	}
}
