// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on laptop-scale workloads. Each experiment
// returns typed rows so both the cmd/experiments CLI and the root
// bench_test.go harness can drive it; Print* helpers render the same
// layout the paper uses.
//
// Scaling substitutions (documented per-experiment in EXPERIMENTS.md):
// instance counts and feature counts are divided by a scale factor, the
// Paillier modulus defaults to 512 bits instead of 2048, and the public
// network bandwidth is scaled with compute so the comm/compute ratio of
// the paper's testbed is preserved. Absolute times differ from the paper;
// the *shape* — which system wins, by roughly what factor, and where the
// crossovers fall — is what these harnesses check.
package experiments

import (
	"crypto/rand"
	"fmt"
	"sync"
	"time"

	"vf2boost/internal/core"
	"vf2boost/internal/dataset"
	"vf2boost/internal/he"
	"vf2boost/internal/paillier"
)

// keyCache shares one key pair per modulus size across all experiments,
// since key generation is irrelevant to every measured quantity.
var (
	keyMu    sync.Mutex
	keyCache = map[int]*paillier.PrivateKey{}
)

// sharedKey returns a cached Paillier key of the given size.
func sharedKey(bits int) (*paillier.PrivateKey, error) {
	keyMu.Lock()
	defer keyMu.Unlock()
	if k, ok := keyCache[bits]; ok {
		return k, nil
	}
	k, err := paillier.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, err
	}
	keyCache[bits] = k
	return k, nil
}

// decryptorFor builds the scheme handle an experiment run should use.
func decryptorFor(scheme string, bits int) (he.Decryptor, error) {
	switch scheme {
	case core.SchemeMock:
		// Honor the configured width: the batched-backend lane plans
		// derive pair capacity from it, so a fixed 512 would cap how many
		// class lanes a mock window can carry.
		return he.NewMock(bits), nil
	case core.SchemePaillier:
		k, err := sharedKey(bits)
		if err != nil {
			return nil, err
		}
		return he.NewPaillierFromKey(k, 0), nil
	default:
		return nil, fmt.Errorf("experiments: unknown scheme %q", scheme)
	}
}

// FedRun is the outcome of one federated training run.
type FedRun struct {
	Model   *core.FederatedModel
	Stats   *core.Stats
	Wall    time.Duration
	PerTree []time.Duration
	Bytes   int64
}

// runFed trains once and collects the timing evidence.
func runFed(parts []*dataset.Dataset, cfg core.Config, wanMbps float64) (FedRun, error) {
	dec, err := decryptorFor(cfg.Scheme, cfg.KeyBits)
	if err != nil {
		return FedRun{}, err
	}
	opts := []core.SessionOption{core.WithDecryptor(dec)}
	if wanMbps > 0 {
		opts = append(opts, core.WithWAN(wanMbps, 0))
	}
	s, err := core.NewSession(parts, cfg, opts...)
	if err != nil {
		return FedRun{}, err
	}
	start := time.Now()
	m, err := s.Train()
	if err != nil {
		return FedRun{}, err
	}
	r := FedRun{
		Model:   m,
		Stats:   s.Stats(),
		Wall:    time.Since(start),
		PerTree: s.PerTreeTimes(),
	}
	if s.Broker() != nil {
		r.Bytes = s.Broker().BytesSent()
	}
	return r, nil
}

// twoPartySparse generates a joined sparse dataset and its two-party
// split, the shape of the paper's ablation datasets ([28] Section 5.2).
func twoPartySparse(n, featA, featB int, nnzPerRow int, seed int64) (*dataset.Dataset, []*dataset.Dataset, error) {
	cols := featA + featB
	density := float64(nnzPerRow) / float64(cols)
	if density > 1 {
		density = 1
	}
	d, err := dataset.Generate(dataset.GenOptions{
		Rows: n, Cols: cols, Density: density, Seed: seed,
	})
	if err != nil {
		return nil, nil, err
	}
	parts, err := d.VerticalSplit([]int{featA, featB}, 1)
	if err != nil {
		return nil, nil, err
	}
	return d, parts, nil
}

// presetParts generates the synthetic equivalent of a Table 3 dataset and
// splits it across its parties.
func presetParts(name string, scale float64, seed int64) (*dataset.Dataset, []*dataset.Dataset, error) {
	p, ok := dataset.PresetByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown preset %q", name)
	}
	opts, counts := p.Options(scale, seed)
	d, err := dataset.Generate(opts)
	if err != nil {
		return nil, nil, err
	}
	parts, err := d.VerticalSplit(counts, len(counts)-1)
	if err != nil {
		return nil, nil, err
	}
	return d, parts, nil
}

// secs converts a duration to float seconds for table rows.
func secs(d time.Duration) float64 { return d.Seconds() }
