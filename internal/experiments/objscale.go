package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"vf2boost/internal/core"
	"vf2boost/internal/dataset"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/he"
	"vf2boost/internal/metrics"
	"vf2boost/internal/objective"
)

// ObjScaleConfig parameterizes the multi-output objective experiment: a
// sweep over class counts k on one synthetic feature matrix, all trained
// through the vectorized backend, plus a LambdaMART ranking leg. The
// quantities of interest are the cipher-op counters — a k-class round
// ships ONE encrypted gradient pass and shares its root decryptions
// across all k class trees, so decryptions must stay far below the naive
// k-independent-sessions baseline — and the parity gates against the
// co-located multi-output trainer.
type ObjScaleConfig struct {
	Rows    int
	Cols    int
	Classes []int // class-count sweep; 1 = the binary reference point
	Trees   int   // boosting rounds (each round trains k class trees)
	Depth   int
	MaxBins int
	Backend string // vectorized he backend for the multiclass sweep
	KeyBits int
	Seed    int64
	// RankGroups/RankGroupSize shape the ranking leg; Cutoff is the
	// NDCG@k truncation.
	RankGroups    int
	RankGroupSize int
	Cutoff        int
}

// DefaultObjScale returns the sweep used by cmd/experiments and bench.sh.
func DefaultObjScale() ObjScaleConfig {
	return ObjScaleConfig{
		Rows:    2000,
		Cols:    12,
		Classes: []int{1, 3, 5},
		Trees:   2,
		Depth:   3,
		MaxBins: 16,
		Backend: "paillier-batched",
		KeyBits: 1024,
		Seed:    23,

		RankGroups:    50,
		RankGroupSize: 8,
		Cutoff:        10,
	}
}

// ObjRow is one class-count point of the sweep.
type ObjRow struct {
	Outputs     int           `json:"outputs"`
	Wall        time.Duration `json:"wall_ns"`
	Encryptions int64         `json:"encryptions"`
	Decryptions int64         `json:"decryptions"`
	HAdds       int64         `json:"hadds"`
	// CipherOpsPerRoundPerClass is (encryptions+decryptions) divided by
	// rounds x k — the headline amortization figure: it must FALL as k
	// grows, because the shared shipment and root decode are split across
	// more class trees.
	CipherOpsPerRoundPerClass float64 `json:"cipher_ops_per_round_per_class"`
	// NaiveEncRatio/NaiveDecRatio compare against k independent binary
	// sessions (k x the k=1 row); sub-linear sharing keeps them below 1.
	NaiveEncRatio float64 `json:"naive_enc_ratio,omitempty"`
	NaiveDecRatio float64 `json:"naive_dec_ratio,omitempty"`
	// ParityMaxDiff is the largest |federated - local| margin over the
	// k x n matrix (the lossless gate; 0 for the k=1 reference row).
	ParityMaxDiff float64 `json:"parity_max_diff"`
	MetricName    string  `json:"metric_name"`
	Metric        float64 `json:"metric"`
}

// ObjRank is the ranking leg: scalar protocol, query-group gradients.
type ObjRank struct {
	Wall          time.Duration `json:"wall_ns"`
	ParityMaxDiff float64       `json:"parity_max_diff"`
	MetricName    string        `json:"metric_name"`
	Metric        float64       `json:"metric"`
	// Baseline is the same metric for an all-zero score vector (random
	// ordering under the shared tie-break); the gate is Metric > Baseline.
	Baseline float64 `json:"baseline"`
}

// localMultiParams mirrors a federated config for gbdt.TrainMulti.
func localMultiParams(cfg core.Config) gbdt.Params {
	p := gbdt.DefaultParams()
	p.NumTrees = cfg.Trees
	p.LearningRate = cfg.LearningRate
	p.MaxDepth = cfg.MaxDepth
	p.MaxBins = cfg.MaxBins
	p.Split = cfg.Split
	p.Workers = 1
	return p
}

// runObjFed trains one federated session and keeps it alive for its
// crypto counters (FedRun drops the session).
func runObjFed(parts []*dataset.Dataset, cfg core.Config) (*core.FederatedModel, *core.Session, time.Duration, error) {
	dec, err := decryptorFor(cfg.Scheme, cfg.KeyBits)
	if err != nil {
		return nil, nil, 0, err
	}
	s, err := core.NewSession(parts, cfg, core.WithDecryptor(dec))
	if err != nil {
		return nil, nil, 0, err
	}
	start := time.Now()
	m, err := s.Train()
	if err != nil {
		return nil, nil, 0, err
	}
	return m, s, time.Since(start), nil
}

// maxAbsDiff compares two k x n margin matrices.
func maxAbsDiff(a, b [][]float64) float64 {
	worst := 0.0
	for c := range a {
		for i := range a[c] {
			if d := math.Abs(a[c][i] - b[c][i]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// ObjScale runs the class-count sweep and the ranking leg.
func ObjScale(tc ObjScaleConfig) ([]ObjRow, ObjRank, error) {
	base := core.DefaultConfig()
	base.Trees = tc.Trees
	base.MaxDepth = tc.Depth
	base.MaxBins = tc.MaxBins
	base.Scheme = he.Family(tc.Backend)
	base.HEBackend = tc.Backend
	base.KeyBits = tc.KeyBits
	base.Workers = 1
	base.Seed = tc.Seed

	var rows []ObjRow
	var ref ObjRow // the k=1 row, the naive baseline's unit
	for _, k := range tc.Classes {
		classes := k
		if classes < 2 {
			classes = 2 // the generator needs >= 2 classes; k=1 binarizes
		}
		d, err := dataset.GenerateMulticlass(dataset.MultiGenOptions{
			Rows: tc.Rows, Cols: tc.Cols, Classes: classes, Seed: tc.Seed,
		})
		if err != nil {
			return nil, ObjRank{}, err
		}
		if k == 1 {
			for i, y := range d.Labels {
				if y > 0 {
					d.Labels[i] = 1
				} else {
					d.Labels[i] = 0
				}
			}
		}
		parts, err := d.VerticalSplit([]int{tc.Cols / 2, tc.Cols - tc.Cols/2}, 1)
		if err != nil {
			return nil, ObjRank{}, err
		}

		cfg := base
		if k > 1 {
			obj, err := objective.New(fmt.Sprintf("multiclass:%d", k))
			if err != nil {
				return nil, ObjRank{}, err
			}
			cfg.Objective = obj
		}
		m, s, wall, err := runObjFed(parts, cfg)
		if err != nil {
			return nil, ObjRank{}, err
		}
		cs := s.Crypto()
		row := ObjRow{
			Outputs:     k,
			Wall:        wall,
			Encryptions: cs.Encryptions(),
			Decryptions: cs.Decryptions(),
			HAdds:       cs.HAdds(),
		}
		row.CipherOpsPerRoundPerClass =
			float64(row.Encryptions+row.Decryptions) / float64(tc.Trees*k)
		if k > 1 {
			row.NaiveEncRatio = float64(row.Encryptions) / (float64(k) * float64(ref.Encryptions))
			row.NaiveDecRatio = float64(row.Decryptions) / (float64(k) * float64(ref.Decryptions))

			obj, _ := objective.New(fmt.Sprintf("multiclass:%d", k))
			local, err := gbdt.TrainMulti(d, obj, localMultiParams(cfg))
			if err != nil {
				return nil, ObjRank{}, err
			}
			fedM, err := m.PredictAllOutputs(parts)
			if err != nil {
				return nil, ObjRank{}, err
			}
			row.ParityMaxDiff = maxAbsDiff(fedM, local.PredictAllOutputs(d))
			row.MetricName = cfg.Objective.EvalName()
			if row.Metric, err = cfg.Objective.Eval(d.Labels, fedM); err != nil {
				return nil, ObjRank{}, err
			}
		} else {
			ref = row
			margins, err := m.PredictAll(parts)
			if err != nil {
				return nil, ObjRank{}, err
			}
			row.MetricName = "auc"
			if row.Metric, err = metrics.AUC(margins, d.Labels); err != nil {
				return nil, ObjRank{}, err
			}
		}
		rows = append(rows, row)
	}

	rank, err := objRank(tc, base)
	if err != nil {
		return nil, ObjRank{}, err
	}
	return rows, rank, nil
}

// objRank trains the LambdaMART leg over the scalar protocol (ranking is
// single-output) and gates NDCG against the unordered baseline.
func objRank(tc ObjScaleConfig, base core.Config) (ObjRank, error) {
	d, groups, err := dataset.GenerateRanking(dataset.RankGenOptions{
		Groups: tc.RankGroups, GroupSize: tc.RankGroupSize, Cols: tc.Cols,
		Noise: 0.1, Seed: tc.Seed + 1,
	})
	if err != nil {
		return ObjRank{}, err
	}
	parts, err := d.VerticalSplit([]int{tc.Cols / 2, tc.Cols - tc.Cols/2}, 1)
	if err != nil {
		return ObjRank{}, err
	}

	cfg := base
	spec := fmt.Sprintf("ranking:%d", tc.Cutoff)
	obj, err := objective.New(spec)
	if err != nil {
		return ObjRank{}, err
	}
	if err := obj.(objective.GroupAware).SetGroups(groups); err != nil {
		return ObjRank{}, err
	}
	cfg.Objective = obj
	m, _, wall, err := runObjFed(parts, cfg)
	if err != nil {
		return ObjRank{}, err
	}
	margins, err := m.PredictAll(parts)
	if err != nil {
		return ObjRank{}, err
	}

	localObj, err := objective.New(spec)
	if err != nil {
		return ObjRank{}, err
	}
	if err := localObj.(objective.GroupAware).SetGroups(groups); err != nil {
		return ObjRank{}, err
	}
	local, err := gbdt.TrainMulti(d, localObj, localMultiParams(cfg))
	if err != nil {
		return ObjRank{}, err
	}

	out := ObjRank{Wall: wall, MetricName: obj.EvalName()}
	out.ParityMaxDiff = maxAbsDiff([][]float64{margins}, local.PredictAllOutputs(d))
	if out.Metric, err = obj.Eval(d.Labels, [][]float64{margins}); err != nil {
		return ObjRank{}, err
	}
	zeros := [][]float64{make([]float64, len(margins))}
	if out.Baseline, err = obj.Eval(d.Labels, zeros); err != nil {
		return ObjRank{}, err
	}
	return out, nil
}

// PrintObjScale renders the sweep.
func PrintObjScale(w io.Writer, tc ObjScaleConfig, rows []ObjRow, rank ObjRank) {
	fmt.Fprintf(w, "Objective scale: %d x %d, T=%d rounds, depth %d, backend %s (S=%d)\n",
		tc.Rows, tc.Cols, tc.Trees, tc.Depth, tc.Backend, tc.KeyBits)
	fmt.Fprintf(w, "  %2s | %10s | %8s | %8s | %14s | %9s | %9s | %10s | %s\n",
		"k", "wall", "enc", "dec", "ops/round/cls", "enc/naive", "dec/naive", "parity", "metric")
	for _, r := range rows {
		naiveE, naiveD := "-", "-"
		if r.Outputs > 1 {
			naiveE = fmt.Sprintf("%.2fx", r.NaiveEncRatio)
			naiveD = fmt.Sprintf("%.2fx", r.NaiveDecRatio)
		}
		fmt.Fprintf(w, "  %2d | %10v | %8d | %8d | %14.1f | %9s | %9s | %10.2e | %s %.4f\n",
			r.Outputs, r.Wall.Round(time.Millisecond), r.Encryptions, r.Decryptions,
			r.CipherOpsPerRoundPerClass, naiveE, naiveD, r.ParityMaxDiff, r.MetricName, r.Metric)
	}
	fmt.Fprintf(w, "  ranking: %v, parity %.2e, %s %.4f (unordered baseline %.4f)\n",
		rank.Wall.Round(time.Millisecond), rank.ParityMaxDiff, rank.MetricName, rank.Metric, rank.Baseline)
}

// objBench is the BENCH_objectives.json schema.
type objBench struct {
	Date   string         `json:"date"`
	Config ObjScaleConfig `json:"config"`
	Runs   []ObjRow       `json:"runs"`
	Rank   ObjRank        `json:"ranking"`
	Host   oocBenchEnv    `json:"host"`
}

// WriteObjScaleJSON writes the sweep as the committed BENCH_objectives.json
// baseline.
func WriteObjScaleJSON(w io.Writer, date string, tc ObjScaleConfig, rows []ObjRow, rank ObjRank) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(objBench{
		Date:   date,
		Config: tc,
		Runs:   rows,
		Rank:   rank,
		Host:   oocBenchEnv{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU()},
	})
}
