package experiments

import (
	"fmt"
	"io"

	"vf2boost/internal/core"
	"vf2boost/internal/dataset"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/metrics"
)

// Table5Row is one dataset's speedups vs worker count (Table 5).
type Table5Row struct {
	Dataset  string
	Workers  []int
	Speedups []float64 // relative to Workers[0]
}

// Table5Config parameterizes the worker-scaling sweep. The paper scales
// 4 -> 8 -> 16 workers across machines; a single host scales goroutine
// workers over its cores instead, so meaningful speedups require a
// multi-core host (on one core the sweep degenerates to ~1.0x, which the
// harness reports honestly).
type Table5Config struct {
	Presets []string
	Workers []int
	Scale   float64
	Trees   int
	KeyBits int
	Seed    int64
}

// DefaultTable5 returns the scaled sweep used by cmd/experiments.
func DefaultTable5() Table5Config {
	return Table5Config{
		Presets: []string{"susy", "epsilon", "rcv1", "synthesis"},
		Workers: []int{1, 2, 4},
		Scale:   2000,
		Trees:   2,
		KeyBits: 512,
		Seed:    5,
	}
}

// Table5 measures training speedup as the per-party worker count grows.
func Table5(tc Table5Config) ([]Table5Row, error) {
	var rows []Table5Row
	for _, name := range tc.Presets {
		_, parts, err := presetParts(name, tc.Scale, tc.Seed)
		if err != nil {
			return nil, err
		}
		row := Table5Row{Dataset: name, Workers: tc.Workers}
		var baseSec float64
		for wi, workers := range tc.Workers {
			cfg := core.DefaultConfig()
			cfg.Trees = tc.Trees
			cfg.KeyBits = tc.KeyBits
			cfg.Workers = workers
			r, err := runFed(parts, cfg, 0)
			if err != nil {
				return nil, err
			}
			sec := secs(r.Wall)
			if wi == 0 {
				baseSec = sec
			}
			row.Speedups = append(row.Speedups, baseSec/sec)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable5 renders the rows in the paper's layout.
func PrintTable5(w io.Writer, tc Table5Config, rows []Table5Row) {
	fmt.Fprintf(w, "Table 5: speedup vs workers (scaled by %d-worker speed); scale 1/%.0f\n",
		tc.Workers[0], tc.Scale)
	fmt.Fprintf(w, "  %-10s |", "dataset")
	for _, wk := range tc.Workers {
		fmt.Fprintf(w, " %6dw", wk)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s |", r.Dataset)
		for _, s := range r.Speedups {
			fmt.Fprintf(w, " %6.2fx", s)
		}
		fmt.Fprintln(w)
	}
}

// Table6Row is one party count's speedup and AUC (Table 6).
type Table6Row struct {
	Parties int
	Speedup map[string]float64
	AUC     map[string]float64
}

// Table6Config parameterizes the multi-party sweep: the features of each
// dataset are divided evenly over the passive parties plus Party B, as in
// the paper's protocol for Table 6.
type Table6Config struct {
	Presets []string
	Parties []int
	Scale   float64
	Trees   int
	KeyBits int
	WANMbps float64
	Seed    int64
}

// DefaultTable6 returns the scaled sweep used by cmd/experiments.
func DefaultTable6() Table6Config {
	return Table6Config{
		Presets: []string{"epsilon", "rcv1"},
		Parties: []int{2, 3, 4},
		Scale:   2000,
		Trees:   2,
		KeyBits: 512,
		WANMbps: 7,
		Seed:    6,
	}
}

// Table6 measures speed and AUC as the party count grows, plus the
// Party-B-only AUC reference.
func Table6(tc Table6Config) ([]Table6Row, []Table6Row, error) {
	rows := make([]Table6Row, len(tc.Parties))
	for i, np := range tc.Parties {
		rows[i] = Table6Row{Parties: np, Speedup: map[string]float64{}, AUC: map[string]float64{}}
	}
	ref := Table6Row{Parties: 1, AUC: map[string]float64{}, Speedup: map[string]float64{}}

	for _, name := range tc.Presets {
		p, ok := dataset.PresetByName(name)
		if !ok {
			return nil, nil, fmt.Errorf("experiments: unknown preset %q", name)
		}
		opts, _ := p.Options(tc.Scale, tc.Seed)
		joined, err := dataset.Generate(opts)
		if err != nil {
			return nil, nil, err
		}
		train, valid := joined.TrainValidSplit(0.8, tc.Seed)

		// The paper divides the features into four equal subsets; a run
		// with k parties uses the first k subsets, so more parties means
		// more total features (and higher AUC).
		maxParties := tc.Parties[len(tc.Parties)-1]
		subsets := evenSplit(joined.Cols(), maxParties)

		var baseSec float64
		for i, np := range tc.Parties {
			counts := subsets[:np]
			used := 0
			for _, c := range counts {
				used += c
			}
			cols := make([]int, used)
			for j := range cols {
				cols[j] = j
			}
			trainSub := train.SubColumns(cols, true)
			validSub := valid.SubColumns(cols, true)
			trainParts, err := trainSub.VerticalSplit(counts, np-1)
			if err != nil {
				return nil, nil, err
			}
			validParts, err := validSub.VerticalSplit(counts, np-1)
			if err != nil {
				return nil, nil, err
			}
			cfg := core.DefaultConfig()
			cfg.Trees = tc.Trees
			cfg.KeyBits = tc.KeyBits
			cfg.Workers = 1
			r, err := runFed(trainParts, cfg, tc.WANMbps)
			if err != nil {
				return nil, nil, err
			}
			sec := secs(r.Wall)
			if i == 0 {
				baseSec = sec
			}
			rows[i].Speedup[name] = baseSec / sec
			if margins, err := r.Model.PredictAll(validParts); err == nil {
				if auc, err := metrics.AUC(margins, valid.Labels); err == nil {
					rows[i].AUC[name] = auc
				}
			}
			if i == 0 {
				// Party-B-only reference: train on B's shard alone.
				bAUC, err := bOnlyAUC(trainParts[np-1], validParts[np-1], tc.Trees)
				if err == nil {
					ref.AUC[name] = bAUC
				}
			}
		}
	}
	return rows, []Table6Row{ref}, nil
}

func evenSplit(cols, parties int) []int {
	counts := make([]int, parties)
	base := cols / parties
	rem := cols % parties
	for i := range counts {
		counts[i] = base
		if i < rem {
			counts[i]++
		}
	}
	return counts
}

func bOnlyAUC(train, valid *dataset.Dataset, trees int) (float64, error) {
	lp := gbdt.DefaultParams()
	lp.NumTrees = trees
	m, err := gbdt.Train(train, lp)
	if err != nil {
		return 0, err
	}
	return metrics.AUC(m.PredictAll(valid), valid.Labels)
}

// PrintTable6 renders the rows in the paper's layout.
func PrintTable6(w io.Writer, tc Table6Config, rows, refs []Table6Row) {
	fmt.Fprintf(w, "Table 6: speedup and AUC vs parties; scale 1/%.0f, T=%d\n", tc.Scale, tc.Trees)
	fmt.Fprintf(w, "  %-12s |", "parties")
	for _, name := range tc.Presets {
		fmt.Fprintf(w, " %8s spd %8s auc |", name, name)
	}
	fmt.Fprintln(w)
	for _, ref := range refs {
		fmt.Fprintf(w, "  %-12s |", "Party B only")
		for _, name := range tc.Presets {
			fmt.Fprintf(w, " %12s %12.4f |", "-", ref.AUC[name])
		}
		fmt.Fprintln(w)
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12d |", r.Parties)
		for _, name := range tc.Presets {
			fmt.Fprintf(w, " %11.2fx %12.4f |", r.Speedup[name], r.AUC[name])
		}
		fmt.Fprintln(w)
	}
}
