package experiments

import (
	"bytes"
	"testing"
)

// The experiment harnesses run at tiny scale here — the point is that
// every table/figure generator executes end-to-end and produces sane
// rows; cmd/experiments runs the fuller sweeps.

func TestFig7Smoke(t *testing.T) {
	rows, err := Fig7(256, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	byOp := map[string]float64{}
	for _, r := range rows {
		if r.OpsPerSec <= 0 {
			t.Errorf("%s throughput %g", r.Op, r.OpsPerSec)
		}
		byOp[r.Op] = r.OpsPerSec
	}
	// The cost-model shape the paper's optimizations rely on.
	if byOp["HAdd (re-ordered)"] <= byOp["HAdd (naive)"] {
		t.Error("re-ordered accumulation not faster than naive")
	}
	if byOp["HAdd (naive)"] <= byOp["Decrypt"] {
		t.Error("HAdd should be far faster than decryption")
	}
	var buf bytes.Buffer
	PrintFig7(&buf, 256, rows)
	if buf.Len() == 0 {
		t.Error("empty print output")
	}
}

func TestTable1Smoke(t *testing.T) {
	tc := Table1Config{
		Ns: []int{150}, FeatPerParty: 8, NNZPerRow: 8,
		KeyBits: 256, WANMbps: 0, Seed: 1,
	}
	rows, err := Table1(tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.TotalSec <= 0 || r.BlasterSec <= 0 || r.ReorderedSec <= 0 || r.BothSec <= 0 {
		t.Errorf("non-positive timings: %+v", r)
	}
	if r.EncSec <= 0 || r.HAddSec <= 0 {
		t.Errorf("phase dissection missing: %+v", r)
	}
	var buf bytes.Buffer
	PrintTable1(&buf, tc, rows)
	if buf.Len() == 0 {
		t.Error("empty print output")
	}
}

func TestTable2Smoke(t *testing.T) {
	tc := Table2Config{
		N: 150, Splits: [][2]int{{12, 4}}, NNZPerRow: 8,
		KeyBits: 256, MaxDepth: 3, MaxBins: 6, WANMbps: 0, Seed: 2,
	}
	rows, err := Table2(tc)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.BaselineSec <= 0 || r.OptimSec <= 0 || r.PackSec <= 0 || r.BothSec <= 0 {
		t.Errorf("non-positive timings: %+v", r)
	}
	if r.RatioB < 0 || r.RatioB > 1 {
		t.Errorf("RatioB = %g", r.RatioB)
	}
	if r.BytesPack >= r.BytesBaseline {
		t.Errorf("packing did not reduce traffic: %d vs %d", r.BytesPack, r.BytesBaseline)
	}
	var buf bytes.Buffer
	PrintTable2(&buf, tc, rows)
	if buf.Len() == 0 {
		t.Error("empty print output")
	}
}

func TestFig10Smoke(t *testing.T) {
	fc := Fig10Config{Preset: "census", Scale: 100, Trees: 2, KeyBits: 256, Seed: 3}
	series, err := Fig10(fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("got %d series", len(series))
	}
	names := map[string]bool{}
	for _, s := range series {
		names[s.System] = true
		if s.Final <= 0 {
			t.Errorf("%s final loss %g", s.System, s.Final)
		}
	}
	for _, want := range []string{"VF2Boost", "VF-GBDT", "XGB (co-located)", "XGB (Party B only)"} {
		if !names[want] {
			t.Errorf("missing series %q", want)
		}
	}
	// Curves must be monotone in time.
	for _, s := range series {
		for i := 1; i < len(s.Times); i++ {
			if s.Times[i] <= s.Times[i-1] {
				t.Errorf("%s time series not increasing", s.System)
			}
		}
	}
	var buf bytes.Buffer
	PrintFig10(&buf, fc, series)
	if buf.Len() == 0 {
		t.Error("empty print output")
	}
}

func TestTable4Smoke(t *testing.T) {
	tc := Table4Config{
		Presets: []string{"susy", "rcv1"}, Scale: 50000, Trees: 1,
		KeyBits: 256, WANMbps: 0, Seed: 4,
	}
	rows, err := Table4(tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.XGBSec <= 0 || r.MockSec <= 0 || r.GBDTSec <= 0 || r.VF2Sec <= 0 {
			t.Errorf("%s: non-positive timings %+v", r.Dataset, r)
		}
		// The ordering the paper reports: local fastest, mock (protocol
		// overhead only) next, Paillier-backed systems slowest.
		if r.XGBSec >= r.GBDTSec {
			t.Errorf("%s: XGB (%g) not faster than VF-GBDT (%g)", r.Dataset, r.XGBSec, r.GBDTSec)
		}
		if r.MockSec >= r.GBDTSec {
			t.Errorf("%s: VF-MOCK (%g) not faster than VF-GBDT (%g)", r.Dataset, r.MockSec, r.GBDTSec)
		}
	}
	var buf bytes.Buffer
	PrintTable4(&buf, tc, rows)
	if buf.Len() == 0 {
		t.Error("empty print output")
	}
}

func TestTable5Smoke(t *testing.T) {
	tc := Table5Config{
		Presets: []string{"susy"}, Workers: []int{1, 2}, Scale: 50000,
		Trees: 1, KeyBits: 256, Seed: 5,
	}
	rows, err := Table5(tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Speedups) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Speedups[0] != 1.0 {
		t.Errorf("base speedup = %g, want 1", rows[0].Speedups[0])
	}
	var buf bytes.Buffer
	PrintTable5(&buf, tc, rows)
	if buf.Len() == 0 {
		t.Error("empty print output")
	}
}

func TestGanttSmoke(t *testing.T) {
	gc := GanttConfig{N: 150, FeatA: 8, FeatB: 8, NNZ: 8, KeyBits: 256, Depth: 2, WANMbps: 0, Seed: 11}
	results, err := Gantt(gc)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if len(r.Spans) == 0 {
			t.Errorf("%s recorded no spans", r.Protocol)
		}
		if r.WallSec <= 0 {
			t.Errorf("%s wall time %g", r.Protocol, r.WallSec)
		}
	}
	var buf bytes.Buffer
	PrintGantt(&buf, gc, results)
	out := buf.String()
	for _, want := range []string{"B:Encrypt", "A0:BuildHist", "B:Decrypt+FindSplitA", "#"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("gantt output missing %q", want)
		}
	}
}

func TestAblationSmoke(t *testing.T) {
	// The default ablation runs at S=512 for minutes; a smoke config
	// would need most of that time, so just validate the printer on
	// synthetic rows.
	rows := []AblationRow{{Name: "X", BaselineSec: 2, ExtSec: 1, Note: "n"}}
	var buf bytes.Buffer
	PrintAblation(&buf, DefaultAblation(), rows)
	if !bytes.Contains(buf.Bytes(), []byte("2.00x")) {
		t.Errorf("ablation print: %s", buf.String())
	}
}

func TestTable6Smoke(t *testing.T) {
	tc := Table6Config{
		Presets: []string{"epsilon"}, Parties: []int{2, 3}, Scale: 20000,
		Trees: 1, KeyBits: 256, WANMbps: 0, Seed: 6,
	}
	rows, refs, err := Table6(tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(refs) != 1 {
		t.Fatalf("rows=%d refs=%d", len(rows), len(refs))
	}
	if rows[0].Speedup["epsilon"] != 1.0 {
		t.Errorf("2-party speedup = %g, want 1", rows[0].Speedup["epsilon"])
	}
	var buf bytes.Buffer
	PrintTable6(&buf, tc, rows, refs)
	if buf.Len() == 0 {
		t.Error("empty print output")
	}
}
