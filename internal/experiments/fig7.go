package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"vf2boost/internal/fixedpoint"
	"vf2boost/internal/he"
)

// Fig7Row is one bar of Figure 7: the single-thread throughput of one
// cryptography operation.
type Fig7Row struct {
	Op        string
	OpsPerSec float64
}

// Fig7 measures the throughput of the cryptography operations the cost
// model of Section 5 is built on, over values drawn from a normal
// distribution as in the paper: encryption (with and without a
// precomputed-obfuscator pool), decryption, naive homomorphic addition
// over mixed exponents, re-ordered homomorphic addition, scalar
// multiplication, and packed decryption (effective per-value rate).
func Fig7(keyBits, samples int) ([]Fig7Row, error) {
	dec, err := decryptorFor("paillier", keyBits)
	if err != nil {
		return nil, err
	}
	codec := fixedpoint.NewCodec(dec, fixedpoint.WithSeed(7))
	rng := rand.New(rand.NewSource(7))
	values := make([]float64, samples)
	for i := range values {
		values[i] = rng.NormFloat64()
	}

	var rows []Fig7Row
	timed := func(op string, n int, fn func() error) error {
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("experiments: fig7 %s: %w", op, err)
		}
		rows = append(rows, Fig7Row{Op: op, OpsPerSec: float64(n) / time.Since(start).Seconds()})
		return nil
	}

	// Encrypt.
	cts := make([]fixedpoint.EncNum, samples)
	if err := timed("Encrypt", samples, func() error {
		for i, v := range values {
			e, err := codec.EncryptValue(v)
			if err != nil {
				return err
			}
			cts[i] = e
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Decrypt.
	if err := timed("Decrypt", samples, func() error {
		for _, e := range cts {
			if _, err := codec.Decrypt(dec, e); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Naive HAdd: accumulate mixed-exponent ciphertexts into one bin.
	if err := timed("HAdd (naive)", samples, func() error {
		acc := codec.EncryptZero()
		for _, e := range cts {
			codec.AddEncInto(&acc, e)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Re-ordered HAdd: per-exponent workspaces, E-1 scalings at the end.
	if err := timed("HAdd (re-ordered)", samples, func() error {
		rs := fixedpoint.NewReorderedSum(codec)
		for _, e := range cts {
			rs.Add(e)
		}
		rs.Merge()
		return nil
	}); err != nil {
		return nil, err
	}

	// SMul with a histogram-scaling-sized factor.
	if err := timed("SMul", samples, func() error {
		for _, e := range cts {
			codec.ScaleEnc(e, e.Exp+2)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Packed decryption: t values per Decrypt call. Use non-negative
	// encodings as the packing shift guarantees in real histograms.
	packBits := fixedpoint.DefaultPackBits
	capacity := fixedpoint.PackCapacity(dec, packBits)
	unified := codec.BaseExp() + codec.ExpSpread() - 1
	pos := make([]he.Ciphertext, samples)
	for i := range pos {
		n, err := codec.EncodeAt(1.0+values[i]*values[i], unified)
		if err != nil {
			return nil, err
		}
		ct, err := dec.Encrypt(n.Man)
		if err != nil {
			return nil, err
		}
		pos[i] = ct
	}
	// Packing cost (Party A's side: t-1 SMul + t-1 HAdd per group).
	var packedCts []he.Ciphertext
	var groupSizes []int
	if err := timed("Pack (per value)", samples, func() error {
		for lo := 0; lo < samples; lo += capacity {
			hi := lo + capacity
			if hi > samples {
				hi = samples
			}
			packed, err := codec.Pack(pos[lo:hi], packBits)
			if err != nil {
				return err
			}
			packedCts = append(packedCts, packed)
			groupSizes = append(groupSizes, hi-lo)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Packed decryption (Party B's side): one Decrypt recovers t values,
	// so the effective per-value decryption rate rises ~t×.
	if err := timed(fmt.Sprintf("Decrypt (packed x%d)", capacity), samples, func() error {
		for i, packed := range packedCts {
			plain, err := dec.Decrypt(packed)
			if err != nil {
				return err
			}
			fixedpoint.Unpack(plain, packBits, groupSizes[i])
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintFig7 renders the rows in the paper's layout.
func PrintFig7(w io.Writer, keyBits int, rows []Fig7Row) {
	fmt.Fprintf(w, "Figure 7: cryptography throughput (ops/s, single thread, S=%d)\n", keyBits)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-22s %12.0f\n", r.Op, r.OpsPerSec)
	}
}
