package experiments

import (
	"fmt"
	"io"

	"vf2boost/internal/core"
	"vf2boost/internal/dataset"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/metrics"
)

// Fig10Series is one curve of Figure 10: cumulative training time vs
// validation logistic loss, one point per boosting round. Reference
// systems (XGBoost co-located and Party-B-only) contribute a final loss
// level rather than a curve, as in the paper's horizontal lines.
type Fig10Series struct {
	System string
	Times  []float64 // cumulative seconds after each tree
	Loss   []float64 // validation logloss after each tree
	Final  float64   // final validation loss
	AUC    float64   // final validation AUC
}

// Fig10Config parameterizes a convergence run on one of the small-scale
// presets (census, a9a).
type Fig10Config struct {
	Preset  string
	Scale   float64
	Trees   int
	KeyBits int
	WANMbps float64
	Seed    int64
}

// DefaultFig10 returns the scaled configuration for a preset.
func DefaultFig10(preset string) Fig10Config {
	return Fig10Config{Preset: preset, Scale: 10, Trees: 10, KeyBits: 512, WANMbps: 7, Seed: 3}
}

// Fig10 trains VF²Boost and VF-GBDT federated plus the two XGBoost-style
// reference lines, and reconstructs the loss-vs-time curves.
func Fig10(fc Fig10Config) ([]Fig10Series, error) {
	joined, _, err := presetParts(fc.Preset, fc.Scale, fc.Seed)
	if err != nil {
		return nil, err
	}
	train, valid := joined.TrainValidSplit(0.8, fc.Seed)
	p, _ := dataset.PresetByName(fc.Preset)
	_, counts := p.Options(fc.Scale, fc.Seed)
	trainParts, err := train.VerticalSplit(counts, len(counts)-1)
	if err != nil {
		return nil, err
	}
	validParts, err := valid.VerticalSplit(counts, len(counts)-1)
	if err != nil {
		return nil, err
	}

	var out []Fig10Series
	fedSeries := func(name string, cfg core.Config) error {
		cfg.Trees = fc.Trees
		cfg.KeyBits = fc.KeyBits
		cfg.Workers = 1
		r, err := runFed(trainParts, cfg, fc.WANMbps)
		if err != nil {
			return err
		}
		s := Fig10Series{System: name}
		cum := 0.0
		for k := 1; k <= fc.Trees; k++ {
			cum += secs(r.PerTree[k-1])
			margins, err := r.Model.PredictAllPrefix(validParts, k)
			if err != nil {
				return err
			}
			ll, err := metrics.LogLoss(margins, valid.Labels)
			if err != nil {
				return err
			}
			s.Times = append(s.Times, cum)
			s.Loss = append(s.Loss, ll)
		}
		s.Final = s.Loss[len(s.Loss)-1]
		finalMargins, err := r.Model.PredictAll(validParts)
		if err != nil {
			return err
		}
		if auc, err := metrics.AUC(finalMargins, valid.Labels); err == nil {
			s.AUC = auc
		}
		out = append(out, s)
		return nil
	}

	if err := fedSeries("VF2Boost", core.DefaultConfig()); err != nil {
		return nil, err
	}
	if err := fedSeries("VF-GBDT", core.BaselineConfig()); err != nil {
		return nil, err
	}

	// Reference lines: non-federated training on the co-located table and
	// on Party B's shard alone.
	localRef := func(name string, d *dataset.Dataset, vd *dataset.Dataset) error {
		lp := gbdt.DefaultParams()
		lp.NumTrees = fc.Trees
		m, err := gbdt.Train(d, lp)
		if err != nil {
			return err
		}
		margins := m.PredictAll(vd)
		ll, err := metrics.LogLoss(margins, vd.Labels)
		if err != nil {
			return err
		}
		s := Fig10Series{System: name, Final: ll}
		if auc, err := metrics.AUC(margins, vd.Labels); err == nil {
			s.AUC = auc
		}
		out = append(out, s)
		return nil
	}
	if err := localRef("XGB (co-located)", train, valid); err != nil {
		return nil, err
	}
	bTrain := trainParts[len(trainParts)-1]
	bValid := validParts[len(validParts)-1]
	if err := localRef("XGB (Party B only)", bTrain, bValid); err != nil {
		return nil, err
	}
	return out, nil
}

// PrintFig10 renders the curves as aligned columns plus the reference
// levels.
func PrintFig10(w io.Writer, fc Fig10Config, series []Fig10Series) {
	fmt.Fprintf(w, "Figure 10 (%s, scale 1/%.0f): validation logloss vs cumulative time\n", fc.Preset, fc.Scale)
	for _, s := range series {
		if len(s.Times) == 0 {
			fmt.Fprintf(w, "  %-20s final loss %.4f, AUC %.4f (reference line)\n", s.System, s.Final, s.AUC)
			continue
		}
		fmt.Fprintf(w, "  %-20s final loss %.4f, AUC %.4f\n", s.System, s.Final, s.AUC)
		fmt.Fprintf(w, "    t(s):  ")
		for _, t := range s.Times {
			fmt.Fprintf(w, "%8.2f", t)
		}
		fmt.Fprintf(w, "\n    loss:  ")
		for _, l := range s.Loss {
			fmt.Fprintf(w, "%8.4f", l)
		}
		fmt.Fprintln(w)
	}
}
