package experiments

import (
	"fmt"
	"io"

	"vf2boost/internal/core"
)

// Table1Row is one row of Table 1: the time to build the histograms of
// the root node under the baseline (with its Enc/Comm/HAdd dissection)
// and with the blaster-style encryption and re-ordered accumulation
// optimizations.
type Table1Row struct {
	N            int
	EncSec       float64
	CommSec      float64
	HAddSec      float64
	TotalSec     float64
	BlasterSec   float64
	ReorderedSec float64
	BothSec      float64
}

// Table1Config parameterizes the sweep. The defaults mirror the paper at
// 1/1000 scale: the paper fixes 25K features per party and sweeps
// N ∈ {2.5M, 5M, 10M}; here the feature count and instance counts are
// scaled down together and the WAN bandwidth is scaled with compute so
// the comm/compute ratio of the 300 Mbps testbed is preserved.
type Table1Config struct {
	Ns           []int
	FeatPerParty int
	NNZPerRow    int
	KeyBits      int
	WANMbps      float64
	Seed         int64
}

// DefaultTable1 returns the scaled sweep used by cmd/experiments.
func DefaultTable1() Table1Config {
	return Table1Config{
		Ns:           []int{2500, 5000, 10000},
		FeatPerParty: 50,
		NNZPerRow:    50,
		KeyBits:      512,
		WANMbps:      7,
		Seed:         1,
	}
}

// Table1 measures the root-node processing (one tree, one layer) for the
// four configurations.
func Table1(tc Table1Config) ([]Table1Row, error) {
	var rows []Table1Row
	for _, n := range tc.Ns {
		_, parts, err := twoPartySparse(n, tc.FeatPerParty, tc.FeatPerParty, tc.NNZPerRow, tc.Seed)
		if err != nil {
			return nil, err
		}
		base := core.BaselineConfig()
		base.Trees = 1
		base.MaxDepth = 1
		base.KeyBits = tc.KeyBits
		base.MaxBins = 20
		base.Workers = 1

		row := Table1Row{N: n}
		// Baseline with phase dissection.
		r, err := runFed(parts, base, tc.WANMbps)
		if err != nil {
			return nil, err
		}
		row.EncSec = secs(r.Stats.EncryptTime())
		row.HAddSec = secs(r.Stats.BuildHistTime())
		row.TotalSec = secs(r.Wall)
		// In the sequential baseline the transfer is not overlapped with
		// anything, so the bulk-send time is the idle gap the phases do
		// not explain.
		if comm := row.TotalSec - row.EncSec - row.HAddSec - secs(r.Stats.DecryptTime()) - secs(r.Stats.FindSplitTime()); comm > 0 {
			row.CommSec = comm
		}

		variant := func(blaster, reordered bool) (float64, error) {
			cfg := base
			cfg.BlasterEncryption = blaster
			cfg.ReorderedAccumulation = reordered
			r, err := runFed(parts, cfg, tc.WANMbps)
			if err != nil {
				return 0, err
			}
			return secs(r.Wall), nil
		}
		if row.BlasterSec, err = variant(true, false); err != nil {
			return nil, err
		}
		if row.ReorderedSec, err = variant(false, true); err != nil {
			return nil, err
		}
		if row.BothSec, err = variant(true, true); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable1 renders the rows in the paper's layout, with speedups over
// the baseline total.
func PrintTable1(w io.Writer, tc Table1Config, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: root-node histogram build (s); %d feats/party, S=%d, WAN %.0f Mbps\n",
		tc.FeatPerParty, tc.KeyBits, tc.WANMbps)
	fmt.Fprintf(w, "  %8s | %7s %7s %7s %7s | %-16s %-16s %-16s\n",
		"N", "Enc", "Comm", "HAdd", "Total", "+BlasterEnc", "+Re-ordered", "+Both")
	for _, r := range rows {
		fmt.Fprintf(w, "  %8d | %7.2f %7.2f %7.2f %7.2f | %7.2f (%4.2fx)  %7.2f (%4.2fx)  %7.2f (%4.2fx)\n",
			r.N, r.EncSec, r.CommSec, r.HAddSec, r.TotalSec,
			r.BlasterSec, r.TotalSec/r.BlasterSec,
			r.ReorderedSec, r.TotalSec/r.ReorderedSec,
			r.BothSec, r.TotalSec/r.BothSec)
	}
}
