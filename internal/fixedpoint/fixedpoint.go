// Package fixedpoint encodes floating-point values into the integer
// plaintext space of an additively homomorphic cryptosystem, following the
// convention of Section 2.2 of the VF²Boost paper:
//
//	V = round(v · B^e) + 1(v<0) · n
//
// where B is the encoding base (default 16) and e the exponent. The
// exponent is drawn from a small set of values ("non-deterministic in
// order to obfuscate the range of v"), which is exactly what makes the
// re-ordered histogram accumulation of Section 5.1 profitable: adding two
// ciphertexts with different exponents requires a scaling (SMul), while
// adding within one exponent class is a plain HAdd.
//
// The package also implements the polynomial cipher packing of Section
// 5.2: t non-negative M-bit values are packed into a single ciphertext,
// cutting decryption and transfer cost by t×.
package fixedpoint

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sync"

	"vf2boost/internal/he"
)

// Defaults match the paper: B = 16 and a handful of distinct exponents
// ("ranging from 4 to 8" unique values in practice).
const (
	DefaultBase      = 16
	DefaultBaseExp   = 8
	DefaultExpSpread = 4
)

// Num is an encoded plaintext number.
type Num struct {
	// Exp is the encoding exponent e.
	Exp int
	// Man is the mantissa round(v·B^e) mod N, with negatives wrapped.
	Man *big.Int
}

// EncNum is an encrypted encoded number ⟨e, [[V]]⟩.
type EncNum struct {
	Exp int
	Ct  he.Ciphertext
}

// Codec encodes, encrypts and homomorphically combines floating-point
// values over a given scheme. It is safe for concurrent use.
type Codec struct {
	scheme    he.Scheme
	base      int
	baseExp   int
	expSpread int

	mu  sync.Mutex
	rng *rand.Rand

	powMu sync.RWMutex
	pows  map[int]*big.Int // B^k cache

	stats *Stats
}

// Option configures a Codec.
type Option func(*Codec)

// WithBase sets the encoding base B (must be >= 2).
func WithBase(b int) Option { return func(c *Codec) { c.base = b } }

// WithExponents sets the minimum exponent and the number of distinct
// exponent values used for obfuscation (spread >= 1; spread == 1 disables
// obfuscation and makes encoding deterministic).
func WithExponents(baseExp, spread int) Option {
	return func(c *Codec) { c.baseExp, c.expSpread = baseExp, spread }
}

// WithSeed seeds the exponent-obfuscation RNG for reproducible runs.
func WithSeed(seed int64) Option {
	return func(c *Codec) { c.rng = rand.New(rand.NewSource(seed)) }
}

// WithStats attaches an operation counter.
func WithStats(s *Stats) Option { return func(c *Codec) { c.stats = s } }

// NewCodec builds a codec over scheme with the paper's defaults.
func NewCodec(scheme he.Scheme, opts ...Option) *Codec {
	c := &Codec{
		scheme:    scheme,
		base:      DefaultBase,
		baseExp:   DefaultBaseExp,
		expSpread: DefaultExpSpread,
		rng:       rand.New(rand.NewSource(1)),
		pows:      make(map[int]*big.Int),
		stats:     &Stats{},
	}
	for _, o := range opts {
		o(c)
	}
	if c.base < 2 {
		panic("fixedpoint: base must be >= 2")
	}
	if c.expSpread < 1 {
		panic("fixedpoint: exponent spread must be >= 1")
	}
	return c
}

// Scheme returns the underlying cryptosystem.
func (c *Codec) Scheme() he.Scheme { return c.scheme }

// Stats returns the codec's operation counters.
func (c *Codec) Stats() *Stats { return c.stats }

// Base returns the encoding base B.
func (c *Codec) Base() int { return c.base }

// BaseExp returns the minimum encoding exponent.
func (c *Codec) BaseExp() int { return c.baseExp }

// ExpSpread returns the number of distinct exponents in use (the paper's E).
func (c *Codec) ExpSpread() int { return c.expSpread }

// pow returns B^k as a big integer, caching results.
func (c *Codec) pow(k int) *big.Int {
	if k < 0 {
		panic("fixedpoint: negative power")
	}
	c.powMu.RLock()
	p, ok := c.pows[k]
	c.powMu.RUnlock()
	if ok {
		return p
	}
	p = new(big.Int).Exp(big.NewInt(int64(c.base)), big.NewInt(int64(k)), nil)
	c.powMu.Lock()
	c.pows[k] = p
	c.powMu.Unlock()
	return p
}

// ReseedExp restarts the exponent-obfuscation stream from a new seed.
// Callers that reseed at deterministic points (e.g. per boosting round)
// make the stream position-independent, so a run resumed mid-sequence
// draws the same exponents an uninterrupted run would.
func (c *Codec) ReseedExp(seed int64) {
	c.mu.Lock()
	c.rng = rand.New(rand.NewSource(seed))
	c.mu.Unlock()
}

// RandExp draws an obfuscated exponent from [baseExp, baseExp+spread).
func (c *Codec) RandExp() int {
	if c.expSpread == 1 {
		return c.baseExp
	}
	c.mu.Lock()
	e := c.baseExp + c.rng.Intn(c.expSpread)
	c.mu.Unlock()
	return e
}

// EncodeAt encodes v with a fixed exponent. Values whose scaled mantissa
// exceeds the int64 fast path are encoded exactly through big.Float.
func (c *Codec) EncodeAt(v float64, exp int) (Num, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return Num{}, fmt.Errorf("fixedpoint: cannot encode %v", v)
	}
	var man *big.Int
	if scaled := v * math.Pow(float64(c.base), float64(exp)); math.Abs(scaled) < math.MaxInt64/2 {
		man = big.NewInt(int64(math.Round(scaled)))
	} else {
		// Exact path: v (53-bit mantissa) times the exact integer B^exp,
		// rounded half away from zero to match math.Round.
		bf := new(big.Float).SetPrec(128).SetFloat64(v)
		bf.Mul(bf, new(big.Float).SetPrec(128).SetInt(c.pow(exp)))
		half := big.NewFloat(0.5)
		if bf.Signbit() {
			bf.Sub(bf, half)
		} else {
			bf.Add(bf, half)
		}
		man, _ = bf.Int(nil)
		if man.CmpAbs(c.scheme.N()) >= 0 {
			return Num{}, fmt.Errorf("fixedpoint: %g at exponent %d exceeds the plaintext space", v, exp)
		}
	}
	if man.Sign() < 0 {
		man.Add(man, c.scheme.N())
	}
	return Num{Exp: exp, Man: man}, nil
}

// Encode encodes v with an obfuscated exponent.
func (c *Codec) Encode(v float64) (Num, error) {
	return c.EncodeAt(v, c.RandExp())
}

// Decode recovers the floating-point value of an encoded number.
func (c *Codec) Decode(n Num) float64 {
	signed := he.Signed(c.scheme, n.Man)
	f, _ := new(big.Float).SetInt(signed).Float64()
	return f / math.Pow(float64(c.base), float64(n.Exp))
}

// DecodeShifted decodes a mantissa that is known to be non-negative (for
// example after the histogram-packing shift), without the signed mapping.
func (c *Codec) DecodeShifted(man *big.Int, exp int) float64 {
	f, _ := new(big.Float).SetInt(man).Float64()
	return f / math.Pow(float64(c.base), float64(exp))
}

// DecodeSigned converts an already-signed mantissa (no modular wrapping)
// at the given base and exponent to a float.
func DecodeSigned(man *big.Int, base, exp int) float64 {
	f, _ := new(big.Float).SetInt(man).Float64()
	return f / math.Pow(float64(base), float64(exp))
}

// Rescale re-encodes n at a higher exponent (lossless).
func (c *Codec) Rescale(n Num, toExp int) Num {
	if toExp < n.Exp {
		panic("fixedpoint: cannot rescale to a lower exponent")
	}
	if toExp == n.Exp {
		return n
	}
	man := new(big.Int).Mul(n.Man, c.pow(toExp-n.Exp))
	man.Mod(man, c.scheme.N())
	return Num{Exp: toExp, Man: man}
}

// Encrypt encrypts an encoded number.
func (c *Codec) Encrypt(n Num) (EncNum, error) {
	ct, err := c.scheme.Encrypt(n.Man)
	if err != nil {
		return EncNum{}, err
	}
	c.stats.addEnc(1)
	return EncNum{Exp: n.Exp, Ct: ct}, nil
}

// EncryptValue encodes and encrypts v in one step.
func (c *Codec) EncryptValue(v float64) (EncNum, error) {
	n, err := c.Encode(v)
	if err != nil {
		return EncNum{}, err
	}
	return c.Encrypt(n)
}

// EncryptZero returns an encrypted zero at the lowest exponent, suitable
// as an accumulator seed.
func (c *Codec) EncryptZero() EncNum {
	return EncNum{Exp: c.baseExp, Ct: c.scheme.EncryptZero()}
}

// Decrypt recovers the floating-point value of an encrypted number.
func (c *Codec) Decrypt(dec he.Decryptor, e EncNum) (float64, error) {
	m, err := dec.Decrypt(e.Ct)
	if err != nil {
		return 0, err
	}
	c.stats.addDec(1)
	return c.Decode(Num{Exp: e.Exp, Man: m}), nil
}

// ScaleEnc homomorphically rescales an encrypted number to a higher
// exponent; this is the cipher scaling operation whose cost the
// re-ordered accumulation avoids.
func (c *Codec) ScaleEnc(e EncNum, toExp int) EncNum {
	if toExp < e.Exp {
		panic("fixedpoint: cannot scale ciphertext to a lower exponent")
	}
	if toExp == e.Exp {
		return e
	}
	c.stats.addScale(1)
	c.stats.addSMul(1)
	return EncNum{Exp: toExp, Ct: c.scheme.MulScalar(e.Ct, c.pow(toExp-e.Exp))}
}

// AddEnc returns the homomorphic sum of two encrypted numbers, scaling to
// the larger exponent as needed (the naïve accumulation path).
func (c *Codec) AddEnc(a, b EncNum) EncNum {
	if a.Exp < b.Exp {
		a = c.ScaleEnc(a, b.Exp)
	} else if b.Exp < a.Exp {
		b = c.ScaleEnc(b, a.Exp)
	}
	c.stats.addHAdd(1)
	return EncNum{Exp: a.Exp, Ct: c.scheme.Add(a.Ct, b.Ct)}
}

// AddEncInto accumulates b into *dst, scaling whichever side has the
// smaller exponent. The accumulator must be exclusively owned by the
// caller (e.g. seeded from EncryptZero).
func (c *Codec) AddEncInto(dst *EncNum, b EncNum) {
	switch {
	case dst.Exp == b.Exp:
	case dst.Exp < b.Exp:
		*dst = c.ScaleEnc(*dst, b.Exp)
	default:
		b = c.ScaleEnc(b, dst.Exp)
	}
	c.stats.addHAdd(1)
	dst.Ct = c.scheme.AddInto(dst.Ct, b.Ct)
}

// SubEnc returns a - b with exponent alignment. It propagates the
// scheme's subtraction error (a Paillier subtrahend with no modular
// inverse) instead of panicking on hostile ciphertexts.
func (c *Codec) SubEnc(a, b EncNum) (EncNum, error) {
	if a.Exp < b.Exp {
		a = c.ScaleEnc(a, b.Exp)
	} else if b.Exp < a.Exp {
		b = c.ScaleEnc(b, a.Exp)
	}
	c.stats.addHAdd(1)
	ct, err := c.scheme.Sub(a.Ct, b.Ct)
	if err != nil {
		return EncNum{}, err
	}
	return EncNum{Exp: a.Exp, Ct: ct}, nil
}

// AddPlain adds two encoded plaintext numbers with exponent alignment.
func (c *Codec) AddPlain(a, b Num) Num {
	if a.Exp < b.Exp {
		a = c.Rescale(a, b.Exp)
	} else if b.Exp < a.Exp {
		b = c.Rescale(b, a.Exp)
	}
	man := new(big.Int).Add(a.Man, b.Man)
	man.Mod(man, c.scheme.N())
	return Num{Exp: a.Exp, Man: man}
}
