package fixedpoint

// ReorderedSum implements the re-ordered histogram accumulation of
// Section 5.1: instead of accumulating ciphertexts into a single
// accumulator (which scales the accumulator every time a higher exponent
// arrives, O(N·(E-1)/E) scalings in expectation), it keeps one workspace
// per exponent value. Each incoming ciphertext lands in its own exponent's
// workspace with a plain HAdd; Merge then combines the E workspaces with
// at most E-1 scalings.
//
// A ReorderedSum is not safe for concurrent use; shard accumulation across
// goroutines and Merge the shards.
type ReorderedSum struct {
	codec *Codec
	// slots[i] accumulates ciphertexts with exponent baseExp+i.
	slots []EncNum
	used  []bool
	n     int
}

// NewReorderedSum allocates workspaces for every exponent the codec can
// emit.
func NewReorderedSum(c *Codec) *ReorderedSum {
	return &ReorderedSum{
		codec: c,
		slots: make([]EncNum, c.expSpread),
		used:  make([]bool, c.expSpread),
	}
}

// Add accumulates e into the workspace matching its exponent. It never
// performs a scaling. Exponents outside the codec's range fall back to a
// scaled add into the highest workspace (this does not happen for
// codec-encoded inputs, but keeps the type total).
func (r *ReorderedSum) Add(e EncNum) {
	i := e.Exp - r.codec.baseExp
	if i < 0 || i >= len(r.slots) {
		i = len(r.slots) - 1
		e = r.codec.ScaleEnc(e, r.codec.baseExp+i)
	}
	if !r.used[i] {
		r.slots[i] = EncNum{Exp: e.Exp, Ct: r.codec.scheme.EncryptZero()}
		r.used[i] = true
	}
	r.codec.stats.addHAdd(1)
	r.slots[i].Ct = r.codec.scheme.AddInto(r.slots[i].Ct, e.Ct)
	r.n++
}

// Len reports how many ciphertexts have been accumulated.
func (r *ReorderedSum) Len() int { return r.n }

// Merge combines all workspaces into a single encrypted sum at the highest
// occupied exponent, spending at most E-1 scalings. An empty sum returns
// an encrypted zero.
func (r *ReorderedSum) Merge() EncNum {
	acc := EncNum{}
	seeded := false
	for i := len(r.slots) - 1; i >= 0; i-- {
		if !r.used[i] {
			continue
		}
		if !seeded {
			acc = r.slots[i]
			seeded = true
			continue
		}
		scaled := r.codec.ScaleEnc(r.slots[i], acc.Exp)
		r.codec.stats.addHAdd(1)
		acc.Ct = r.codec.scheme.AddInto(acc.Ct, scaled.Ct)
	}
	if !seeded {
		return r.codec.EncryptZero()
	}
	return acc
}

// Reset clears the accumulator for reuse.
func (r *ReorderedSum) Reset() {
	for i := range r.used {
		r.used[i] = false
	}
	r.n = 0
}
