package fixedpoint

import (
	"math"
	"math/big"
	"testing"

	"vf2boost/internal/he"
)

// FuzzEncodeDecode checks encode/decode never panics and round-trips any
// finite float within relative precision.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(0.0)
	f.Add(1.5)
	f.Add(-math.MaxFloat64)
	f.Add(math.SmallestNonzeroFloat64)
	f.Add(1e300)
	f.Fuzz(func(t *testing.T, v float64) {
		c := NewCodec(he.NewMock(2048), WithSeed(1))
		n, err := c.Encode(v)
		if err != nil {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e300 {
				t.Fatalf("finite %g rejected: %v", v, err)
			}
			return
		}
		got := c.Decode(n)
		if math.Abs(v) < 1e200 && math.Abs(got-v) > 1e-6*math.Max(1, math.Abs(v)) {
			t.Fatalf("round trip %g -> %g", v, got)
		}
	})
}

// FuzzUnpack checks Unpack never panics and inverts manual packing.
func FuzzUnpack(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3))
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0)>>1, uint64(7), uint64(9))
	f.Fuzz(func(t *testing.T, a, b, c uint64) {
		const bits = 63
		mask := (uint64(1) << bits) - 1
		a, b, c = a&mask, b&mask, c&mask
		packed := new(big.Int).SetUint64(c)
		packed.Lsh(packed, bits)
		packed.Add(packed, new(big.Int).SetUint64(b))
		packed.Lsh(packed, bits)
		packed.Add(packed, new(big.Int).SetUint64(a))
		got := Unpack(packed, bits, 3)
		if got[0].Uint64() != a || got[1].Uint64() != b || got[2].Uint64() != c {
			t.Fatalf("unpack (%d,%d,%d) -> (%v,%v,%v)", a, b, c, got[0], got[1], got[2])
		}
	})
}
