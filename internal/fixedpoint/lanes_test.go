package fixedpoint

import (
	"math/big"
	"testing"

	"vf2boost/internal/he"
)

func TestPlanLanesGeometry(t *testing.T) {
	// The paper-default encoding (B=16, e=8) with a unit gradient bound:
	// offset = 16^8 = 2^32, lanes = 33+1+32 = 66 bits, so a 2048-bit
	// modulus packs 2047/132 = 15 pairs.
	plan, err := PlanLanes(2048, 16, 8, 1.0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Pairs != 15 || plan.LaneBits != 66 || plan.Slots() != 30 {
		t.Fatalf("2048-bit plan: pairs=%d laneBits=%d slots=%d", plan.Pairs, plan.LaneBits, plan.Slots())
	}
	if plan.OffsetMan.Cmp(new(big.Int).Lsh(big.NewInt(1), 32)) != 0 {
		t.Fatalf("offset mantissa = %v, want 2^32", plan.OffsetMan)
	}
	// A 256-bit modulus still fits one pair.
	small, err := PlanLanes(256, 16, 8, 1.0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if small.Pairs != 1 {
		t.Fatalf("256-bit plan: pairs=%d, want 1", small.Pairs)
	}
	// Nothing fits a 64-bit modulus at these widths.
	if _, err := PlanLanes(64, 16, 8, 1.0, 32); err == nil {
		t.Fatal("expected no-pair-fits error")
	}
	if _, err := PlanLanes(2048, 16, 8, 0, 32); err == nil {
		t.Fatal("expected positive-bound error")
	}
}

func TestLaneEncodeDecodeRoundTrip(t *testing.T) {
	s := he.NewMock(256)
	c := NewCodec(s, WithExponents(8, 1))
	plan, err := PlanLanes(s.Bits(), c.Base(), 8, 1.0, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Accumulate a batch of signed pairs in plain lane arithmetic and
	// check the exact integer reversal.
	// Dyadic values with ≤ 32 fractional bits encode exactly at B=16, e=8,
	// so the plain float sums match the lane round trip bit for bit.
	values := [][2]float64{{0.5, 0.25}, {-0.75, 0.125}, {1.0, -1.0}, {-0.0625, 0.875}, {0, 0}}
	gSum, hSum := new(big.Int), new(big.Int)
	var wantG, wantH float64
	for _, v := range values {
		gl, hl, err := c.EncodeLanePair(v[0], v[1], plan)
		if err != nil {
			t.Fatalf("EncodeLanePair(%v): %v", v, err)
		}
		gSum.Add(gSum, gl)
		hSum.Add(hSum, hl)
		wantG += v[0]
		wantH += v[1]
	}
	n := int64(len(values))
	if got := plan.DecodeLaneSum(gSum, n); got != wantG {
		t.Errorf("g sum: got %v, want %v", got, wantG)
	}
	if got := plan.DecodeLaneSum(hSum, n); got != wantH {
		t.Errorf("h sum: got %v, want %v", got, wantH)
	}
	// Out-of-bound values must fail, not wrap.
	if _, _, err := c.EncodeLanePair(1.5, 0, plan); err == nil {
		t.Fatal("expected lane-bound error for g beyond the bound")
	}
}

func TestEncryptLanesThroughBackend(t *testing.T) {
	d, err := he.OpenDecryptor("mock-batched", he.Params{Bits: 256, Slots: 2, LaneBits: 66, Headroom: 32})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCodec(d, WithExponents(8, 1))
	plan, err := PlanLanes(256, c.Base(), 8, 1.0, 32)
	if err != nil {
		t.Fatal(err)
	}
	gl, hl, err := c.EncodeLanePair(0.5, -0.25, plan)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.EncryptLanes([]*big.Int{gl, hl})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Encryptions() != 1 {
		t.Errorf("EncryptLanes counted %d encryptions, want 1", c.Stats().Encryptions())
	}
	lanes, err := d.DecryptVec(v)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.DecodeLaneSum(lanes[0], 1); got != 0.5 {
		t.Errorf("g lane: got %v", got)
	}
	if got := plan.DecodeLaneSum(lanes[1], 1); got != -0.25 {
		t.Errorf("h lane: got %v", got)
	}
	// A scalar scheme is not a backend.
	scalar := NewCodec(he.NewMock(256))
	if _, err := scalar.EncryptLanes([]*big.Int{gl}); err == nil {
		t.Fatal("EncryptLanes over a scalar scheme must fail")
	}
}
