package fixedpoint

import (
	"fmt"
	"math"
	"math/big"

	"vf2boost/internal/he"
)

// Lane-aware encoding for slot-batched backends (the BatchCrypt-style
// gradient-pair packing). One vector ciphertext carries k ⟨g,h⟩ pairs in
// 2k lanes; each lane holds the signed fixed-point mantissa shifted by a
// per-lane offset so it is non-negative:
//
//	lane = round(v·B^e) + OffsetMan,   OffsetMan = round(bound·B^e)
//
// with |v| ≤ bound, so lane ∈ [0, 2·OffsetMan]. Accumulating c such lanes
// yields Σ mantissas + c·OffsetMan, which the decryptor reverses exactly
// in the integer domain knowing c. The lane is laneBits wide where
// laneBits − headroom bits hold one shifted value, so up to 2^headroom
// lanes sum without carrying into a neighbour. Unlike the scalar path,
// lane encoding always uses the fixed exponent e = BaseExp: exponent
// obfuscation is meaningless when every lane must share one scale.

// LanePlan is the negotiated lane geometry for a batched backend: how
// many ⟨g,h⟩ pairs fit one ciphertext and how wide each lane is.
type LanePlan struct {
	// Pairs is k, the ⟨g,h⟩ pairs per ciphertext; the backend needs
	// Slots = 2·Pairs lanes.
	Pairs int
	// LaneBits is the lane width in bits.
	LaneBits int
	// Headroom is the high-bit reserve per lane: at most 2^Headroom lane
	// values may be accumulated before a carry could cross lanes.
	Headroom int
	// Exp is the fixed encoding exponent (no obfuscation in lane mode).
	Exp int
	// Base is the encoding base B.
	Base int
	// Bound is the gradient magnitude bound the offset was derived from.
	Bound float64
	// OffsetMan is round(Bound·B^Exp), the per-lane shift.
	OffsetMan *big.Int
}

// Slots returns the lane count a backend must provide for this plan.
func (p LanePlan) Slots() int { return 2 * p.Pairs }

// roundedMagnitude is EncodeAt's rounding (half away from zero) for a
// non-negative value without a scheme: the lane offset must be derived
// with bit-identical rounding on both sides of the wire.
func roundedMagnitude(v float64, base, exp int) *big.Int {
	if scaled := v * math.Pow(float64(base), float64(exp)); math.Abs(scaled) < math.MaxInt64/2 {
		return big.NewInt(int64(math.Round(scaled)))
	}
	pow := new(big.Int).Exp(big.NewInt(int64(base)), big.NewInt(int64(exp)), nil)
	bf := new(big.Float).SetPrec(128).SetFloat64(v)
	bf.Mul(bf, new(big.Float).SetPrec(128).SetInt(pow))
	if bf.Signbit() {
		bf.Sub(bf, big.NewFloat(0.5))
	} else {
		bf.Add(bf, big.NewFloat(0.5))
	}
	m, _ := bf.Int(nil)
	return m
}

// PlanLanes derives the lane geometry for a scheme of the given modulus
// width: lanes wide enough for one offset-shifted value of magnitude ≤
// bound at exponent exp, plus headroom bits of accumulation reserve, and
// as many ⟨g,h⟩ pairs as fit below the modulus. It fails when not even
// one pair fits (the caller should fall back to a scalar backend).
func PlanLanes(schemeBits, base, exp int, bound float64, headroom int) (LanePlan, error) {
	if base < 2 || exp < 0 || headroom < 0 {
		return LanePlan{}, fmt.Errorf("fixedpoint: invalid lane parameters base=%d exp=%d headroom=%d", base, exp, headroom)
	}
	if math.IsNaN(bound) || math.IsInf(bound, 0) || bound <= 0 {
		return LanePlan{}, fmt.Errorf("fixedpoint: lane plan needs a positive gradient bound, got %v", bound)
	}
	off := roundedMagnitude(bound, base, exp)
	if off.Sign() <= 0 {
		return LanePlan{}, fmt.Errorf("fixedpoint: bound %v vanishes at base %d exponent %d", bound, base, exp)
	}
	// A shifted value spans [0, 2·off]: off.BitLen()+1 bits.
	laneBits := off.BitLen() + 1 + headroom
	pairs := (schemeBits - 1) / (2 * laneBits)
	if pairs < 1 {
		return LanePlan{}, fmt.Errorf("fixedpoint: no ⟨g,h⟩ pair fits %d-bit plaintexts at %d-bit lanes", schemeBits, laneBits)
	}
	return LanePlan{
		Pairs:     pairs,
		LaneBits:  laneBits,
		Headroom:  headroom,
		Exp:       exp,
		Base:      base,
		Bound:     bound,
		OffsetMan: off,
	}, nil
}

// EncodeLanePair encodes one ⟨g,h⟩ pair as two offset-shifted lane
// values. Values outside ±Bound fail rather than silently corrupting
// neighbour lanes after accumulation.
func (c *Codec) EncodeLanePair(g, h float64, plan LanePlan) (gl, hl *big.Int, err error) {
	if gl, err = c.encodeLane(g, plan); err != nil {
		return nil, nil, err
	}
	if hl, err = c.encodeLane(h, plan); err != nil {
		return nil, nil, err
	}
	return gl, hl, nil
}

func (c *Codec) encodeLane(v float64, plan LanePlan) (*big.Int, error) {
	n, err := c.EncodeAt(v, plan.Exp)
	if err != nil {
		return nil, err
	}
	lane := new(big.Int).Add(he.Signed(c.scheme, n.Man), plan.OffsetMan)
	// The shifted value must stay in [0, 2·OffsetMan]; anything outside
	// means |v| > Bound and would eat into the accumulation headroom.
	if lane.Sign() < 0 || lane.Cmp(new(big.Int).Lsh(plan.OffsetMan, 1)) > 0 {
		return nil, fmt.Errorf("fixedpoint: value %g exceeds the lane bound ±%g", v, plan.Bound)
	}
	return lane, nil
}

// EncryptLanes encrypts pre-encoded lane values through the codec's
// backend, counting one encryption. The codec must be built over a
// slot-aware backend.
func (c *Codec) EncryptLanes(lanes []*big.Int) (he.VecCiphertext, error) {
	b, ok := c.scheme.(he.Backend)
	if !ok {
		return nil, fmt.Errorf("fixedpoint: scheme %s is not a slot-aware backend", c.scheme.Name())
	}
	v, err := b.EncryptVec(lanes)
	if err != nil {
		return nil, err
	}
	c.stats.addEnc(1)
	return v, nil
}

// LaneSumSigned reverses the offset shift on an accumulated lane: given
// the lane value of an accumulator that c encryptions were added into, it
// returns the exact signed integer sum of the mantissas.
func (p LanePlan) LaneSumSigned(laneSum *big.Int, count int64) *big.Int {
	off := new(big.Int).Mul(big.NewInt(count), p.OffsetMan)
	return new(big.Int).Sub(laneSum, off)
}

// DecodeLaneSum converts an accumulated lane value straight to the
// floating-point sum it represents.
func (p LanePlan) DecodeLaneSum(laneSum *big.Int, count int64) float64 {
	return DecodeSigned(p.LaneSumSigned(laneSum, count), p.Base, p.Exp)
}
