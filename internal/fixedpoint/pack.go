package fixedpoint

import (
	"fmt"
	"math/big"

	"vf2boost/internal/he"
)

// DefaultPackBits is the paper's M = 64: each packed slot holds a
// non-negative value < 2^64, and with S = 2048 a single ciphertext packs
// 2047/64 = 31 histogram bins (the paper rounds this to "32 bins").
const DefaultPackBits = 64

// PackCapacity returns how many M-bit non-negative values fit losslessly
// in one ciphertext of the scheme: t·M must stay below the plaintext
// modulus, so t = (S-1)/M.
func PackCapacity(s he.Scheme, packBits int) int {
	t := (s.Bits() - 1) / packBits
	if t < 1 {
		t = 1
	}
	return t
}

// Pack combines up to PackCapacity ciphertexts of non-negative M-bit
// plaintexts into one ciphertext holding
//
//	V̄ = V_1 + 2^M·(V_2 + 2^M·(V_3 + ···))
//
// using t-1 SMul and t-1 HAdd operations (Step 3 of Figure 9). The first
// input lands in the least significant slot. It is the caller's
// responsibility that every plaintext is in [0, 2^M); histogram packing
// guarantees this by shifting bins into the positive range first.
func (c *Codec) Pack(cts []he.Ciphertext, packBits int) (he.Ciphertext, error) {
	if len(cts) == 0 {
		return nil, fmt.Errorf("fixedpoint: packing zero ciphertexts")
	}
	if max := PackCapacity(c.scheme, packBits); len(cts) > max {
		return nil, fmt.Errorf("fixedpoint: packing %d ciphertexts exceeds capacity %d at M=%d, S=%d",
			len(cts), max, packBits, c.scheme.Bits())
	}
	shift := new(big.Int).Lsh(big.NewInt(1), uint(packBits))
	acc := cts[len(cts)-1]
	for i := len(cts) - 2; i >= 0; i-- {
		acc = c.scheme.MulScalar(acc, shift)
		c.stats.addSMul(1)
		acc = c.scheme.Add(acc, cts[i])
		c.stats.addHAdd(1)
	}
	return acc, nil
}

// Unpack slices a decrypted packed plaintext back into t M-bit values,
// least significant slot first (Step 5 of Figure 9).
func Unpack(packed *big.Int, packBits, t int) []*big.Int {
	mask := new(big.Int).Lsh(big.NewInt(1), uint(packBits))
	mask.Sub(mask, big.NewInt(1))
	out := make([]*big.Int, t)
	rest := new(big.Int).Set(packed)
	for i := 0; i < t; i++ {
		out[i] = new(big.Int).And(rest, mask)
		rest.Rsh(rest, uint(packBits))
	}
	return out
}
