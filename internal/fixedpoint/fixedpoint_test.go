package fixedpoint

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"vf2boost/internal/he"
	"vf2boost/internal/paillier"
)

var cachedKey *paillier.PrivateKey

func paillierCodec(t testing.TB, opts ...Option) (*Codec, *he.PaillierDecryptor) {
	t.Helper()
	if cachedKey == nil {
		k, err := paillier.GenerateKey(cryptoRand{}, 256)
		if err != nil {
			t.Fatal(err)
		}
		cachedKey = k
	}
	dec := he.NewPaillierFromKey(cachedKey, 0)
	return NewCodec(dec, append([]Option{WithSeed(1)}, opts...)...), dec
}

// cryptoRand adapts crypto/rand without importing it at every call site.
type cryptoRand struct{}

func (cryptoRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(rand.Intn(256))
	}
	return len(p), nil
}

func mockCodec(opts ...Option) (*Codec, *he.MockScheme) {
	m := he.NewMock(256)
	return NewCodec(m, append([]Option{WithSeed(1)}, opts...)...), m
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c, _ := mockCodec()
	for _, v := range []float64{0, 1, -1, 0.5, -0.5, 3.14159, -2.71828, 1e-6, -1e-6, 12345.678, -98765.4321} {
		n, err := c.Encode(v)
		if err != nil {
			t.Fatalf("Encode(%g): %v", v, err)
		}
		got := c.Decode(n)
		if math.Abs(got-v) > 1e-6*math.Max(1, math.Abs(v)) {
			t.Errorf("Decode(Encode(%g)) = %g", v, got)
		}
	}
}

func TestEncodeDecodePropertyMock(t *testing.T) {
	c, _ := mockCodec()
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			return true
		}
		n, err := c.Encode(v)
		if err != nil {
			return false
		}
		got := c.Decode(n)
		return math.Abs(got-v) <= 1e-6*math.Max(1, math.Abs(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEncodeRejectsNonFinite(t *testing.T) {
	c, _ := mockCodec()
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := c.Encode(v); err == nil {
			t.Errorf("Encode(%v) succeeded, want error", v)
		}
	}
}

func TestEncodeLargeValuesBigFloatPath(t *testing.T) {
	// Values beyond the int64 fast path take the exact big.Float route.
	c, _ := mockCodec()
	for _, v := range []float64{1e22, -1e22, 3.5e25} {
		n, err := c.EncodeAt(v, 12)
		if err != nil {
			t.Fatalf("EncodeAt(%g, 12): %v", v, err)
		}
		got := c.Decode(n)
		if math.Abs(got-v) > 1e-9*math.Abs(v) {
			t.Errorf("large-value round trip: %g -> %g", v, got)
		}
	}
}

func TestEncodeRejectsBeyondPlaintextSpace(t *testing.T) {
	m := he.NewMock(64)
	c := NewCodec(m, WithSeed(1))
	if _, err := c.EncodeAt(1e30, 12); err == nil {
		t.Error("value exceeding the 64-bit plaintext space accepted")
	}
}

func TestExponentObfuscationSpread(t *testing.T) {
	c, _ := mockCodec(WithExponents(8, 4))
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[c.RandExp()] = true
	}
	if len(seen) != 4 {
		t.Errorf("exponent spread produced %d distinct values, want 4", len(seen))
	}
	for e := range seen {
		if e < 8 || e > 11 {
			t.Errorf("exponent %d outside [8,11]", e)
		}
	}
}

func TestDeterministicWithSpreadOne(t *testing.T) {
	c, _ := mockCodec(WithExponents(8, 1))
	for i := 0; i < 10; i++ {
		if e := c.RandExp(); e != 8 {
			t.Fatalf("RandExp with spread 1 = %d, want 8", e)
		}
	}
}

func TestRescaleLossless(t *testing.T) {
	c, _ := mockCodec()
	n, _ := c.EncodeAt(-1.25, 8)
	r := c.Rescale(n, 11)
	if got := c.Decode(r); math.Abs(got+1.25) > 1e-9 {
		t.Errorf("Decode(Rescale) = %g, want -1.25", got)
	}
}

func TestAddPlainMixedExponents(t *testing.T) {
	c, _ := mockCodec()
	a, _ := c.EncodeAt(1.5, 8)
	b, _ := c.EncodeAt(-0.25, 10)
	sum := c.AddPlain(a, b)
	if got := c.Decode(sum); math.Abs(got-1.25) > 1e-6 {
		t.Errorf("AddPlain = %g, want 1.25", got)
	}
}

func TestEncryptedAddMixedExponentsPaillier(t *testing.T) {
	c, dec := paillierCodec(t)
	ea, err := c.EncryptValue(2.5)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := c.EncryptValue(-1.75)
	if err != nil {
		t.Fatal(err)
	}
	sum := c.AddEnc(ea, eb)
	got, err := c.Decrypt(dec, sum)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.75) > 1e-6 {
		t.Errorf("encrypted add = %g, want 0.75", got)
	}
}

func TestAddEncIntoAccumulation(t *testing.T) {
	c, dec := paillierCodec(t)
	acc := c.EncryptZero()
	want := 0.0
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 25; i++ {
		v := rng.Float64()*4 - 2
		e, err := c.EncryptValue(v)
		if err != nil {
			t.Fatal(err)
		}
		c.AddEncInto(&acc, e)
		want += v
	}
	got, err := c.Decrypt(dec, acc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-5 {
		t.Errorf("accumulated = %g, want %g", got, want)
	}
}

func TestSubEnc(t *testing.T) {
	c, dec := paillierCodec(t)
	ea, _ := c.EncryptValue(5.5)
	eb, _ := c.EncryptValue(2.25)
	ed, err := c.SubEnc(ea, eb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decrypt(dec, ed)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3.25) > 1e-6 {
		t.Errorf("SubEnc = %g, want 3.25", got)
	}
}

func TestReorderedSumMatchesNaive(t *testing.T) {
	cNaive, _ := mockCodec(WithSeed(7))
	cReord, decR := mockCodec(WithSeed(7))

	rng := rand.New(rand.NewSource(9))
	values := make([]float64, 200)
	want := 0.0
	for i := range values {
		values[i] = rng.Float64()*2 - 1
		want += values[i]
	}

	// Naive accumulation.
	accN := cNaive.EncryptZero()
	for _, v := range values {
		e, err := cNaive.EncryptValue(v)
		if err != nil {
			t.Fatal(err)
		}
		cNaive.AddEncInto(&accN, e)
	}

	// Re-ordered accumulation.
	rs := NewReorderedSum(cReord)
	for _, v := range values {
		e, err := cReord.EncryptValue(v)
		if err != nil {
			t.Fatal(err)
		}
		rs.Add(e)
	}
	merged := rs.Merge()

	gotN := cNaive.Decode(Num{Exp: accN.Exp, Man: mustDecrypt(t, cNaive, accN)})
	gotR := cReord.Decode(Num{Exp: merged.Exp, Man: mustDecrypt(t, cReord, merged)})
	_ = decR
	if math.Abs(gotN-want) > 1e-5 || math.Abs(gotR-want) > 1e-5 {
		t.Fatalf("naive=%g reordered=%g want=%g", gotN, gotR, want)
	}

	// The whole point: re-ordered accumulation uses at most E-1 scalings,
	// naive uses many.
	if s := cReord.Stats().Scalings(); s > int64(cReord.ExpSpread()-1) {
		t.Errorf("reordered accumulation used %d scalings, want <= %d", s, cReord.ExpSpread()-1)
	}
	if s := cNaive.Stats().Scalings(); s <= int64(cNaive.ExpSpread()) {
		t.Errorf("naive accumulation used only %d scalings; test not exercising mixed exponents", s)
	}
}

func mustDecrypt(t *testing.T, c *Codec, e EncNum) *big.Int {
	t.Helper()
	dec, ok := c.Scheme().(he.Decryptor)
	if !ok {
		t.Fatal("scheme is not a decryptor")
	}
	m, err := dec.Decrypt(e.Ct)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReorderedSumEmptyAndReset(t *testing.T) {
	c, _ := mockCodec()
	rs := NewReorderedSum(c)
	if got := c.Decode(Num{Exp: rs.Merge().Exp, Man: mustDecrypt(t, c, rs.Merge())}); got != 0 {
		t.Errorf("empty merge decodes to %g, want 0", got)
	}
	e, _ := c.EncryptValue(1.0)
	rs.Add(e)
	if rs.Len() != 1 {
		t.Errorf("Len = %d, want 1", rs.Len())
	}
	rs.Reset()
	if rs.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", rs.Len())
	}
}

func TestPackUnpackRoundTripMock(t *testing.T) {
	m := he.NewMock(512)
	c := NewCodec(m, WithSeed(1))
	vals := []uint64{0, 1, 42, 1 << 40, (1 << 62) + 12345}
	cts := make([]he.Ciphertext, len(vals))
	for i, v := range vals {
		ct, err := m.Encrypt(new(big.Int).SetUint64(v))
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
	}
	packed, err := c.Pack(cts, 64)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := m.Decrypt(packed)
	if err != nil {
		t.Fatal(err)
	}
	got := Unpack(plain, 64, len(vals))
	for i, v := range vals {
		if got[i].Uint64() != v {
			t.Errorf("slot %d = %v, want %d", i, got[i], v)
		}
	}
}

func TestPackUnpackPropertyPaillier(t *testing.T) {
	c, dec := paillierCodec(t)
	capTotal := PackCapacity(dec, 32)
	if capTotal < 2 {
		t.Fatalf("capacity %d too small for test", capTotal)
	}
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > capTotal {
			raw = raw[:capTotal]
		}
		cts := make([]he.Ciphertext, len(raw))
		for i, v := range raw {
			ct, err := dec.Encrypt(new(big.Int).SetUint64(uint64(v)))
			if err != nil {
				return false
			}
			cts[i] = ct
		}
		packed, err := c.Pack(cts, 32)
		if err != nil {
			return false
		}
		plain, err := dec.Decrypt(packed)
		if err != nil {
			return false
		}
		got := Unpack(plain, 32, len(raw))
		for i, v := range raw {
			if got[i].Uint64() != uint64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPackRejectsOverCapacity(t *testing.T) {
	c, m := mockCodec()
	n := PackCapacity(m, 64) + 1
	cts := make([]he.Ciphertext, n)
	for i := range cts {
		cts[i] = m.EncryptZero()
	}
	if _, err := c.Pack(cts, 64); err == nil {
		t.Error("Pack over capacity succeeded, want error")
	}
	if _, err := c.Pack(nil, 64); err == nil {
		t.Error("Pack(nil) succeeded, want error")
	}
}

func TestPackCapacity(t *testing.T) {
	m := he.NewMock(2048)
	if got := PackCapacity(m, 64); got != 31 {
		t.Errorf("PackCapacity(2048, 64) = %d, want 31", got)
	}
	if got := PackCapacity(he.NewMock(64), 64); got != 1 {
		t.Errorf("PackCapacity(64, 64) = %d, want 1", got)
	}
}

func TestStatsCounting(t *testing.T) {
	c, _ := mockCodec()
	e1, _ := c.EncryptValue(1)
	e2, _ := c.EncryptValue(2)
	c.AddEnc(e1, e2)
	s := c.Stats()
	if s.Encryptions() != 2 {
		t.Errorf("Encryptions = %d, want 2", s.Encryptions())
	}
	if s.HAdds() < 1 {
		t.Errorf("HAdds = %d, want >= 1", s.HAdds())
	}
	s.Reset()
	if s.Encryptions() != 0 || s.HAdds() != 0 || s.Scalings() != 0 {
		t.Error("Reset did not zero counters")
	}
}

func TestDecodeShifted(t *testing.T) {
	c, _ := mockCodec()
	n, _ := c.EncodeAt(3.75, 8)
	if got := c.DecodeShifted(n.Man, 8); math.Abs(got-3.75) > 1e-9 {
		t.Errorf("DecodeShifted = %g, want 3.75", got)
	}
}

// TestFastObfuscationEquivalence encodes/encrypts/decrypts across signs and
// exponents with DJN fast obfuscation enabled and checks the results match
// the baseline path bit for bit after decryption — the obfuscator variant
// must be invisible above the he layer.
func TestFastObfuscationEquivalence(t *testing.T) {
	c, dec := paillierCodec(t)
	if err := dec.EnableFastObfuscation(); err != nil {
		t.Fatal(err)
	}
	// paillierCodec shares one cached private key across the package's
	// tests; restore baseline obfuscation so later tests see paper-exact
	// behavior.
	defer dec.DisableFastObfuscation()

	values := []float64{0, 1, -1, 0.5, -0.5, 3.14159, -1e-6, 12345.678, -98765.4321}
	for _, v := range values {
		// Encode once and push the same Num through the encrypted pipeline,
		// so any difference is attributable to the obfuscation variant alone
		// (not to the codec's per-call exponent randomization).
		n, err := c.Encode(v)
		if err != nil {
			t.Fatalf("Encode(%g): %v", v, err)
		}
		e, err := c.Encrypt(n)
		if err != nil {
			t.Fatalf("Encrypt(%g) under fast obfuscation: %v", v, err)
		}
		got, err := c.Decrypt(dec, e)
		if err != nil {
			t.Fatalf("Decrypt(%g): %v", v, err)
		}
		want := c.Decode(n) // exactly what the baseline path decrypts to
		if got != want {
			t.Errorf("fast-obfuscated %g decrypts to %g, baseline %g", v, got, want)
		}
	}

	// Homomorphic ops over fast-obfuscated ciphertexts, including SubEnc
	// across exponent alignment.
	a, err := c.EncryptValue(10.25)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.EncryptValue(3.5)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := c.SubEnc(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c.Decrypt(dec, diff); err != nil || math.Abs(got-6.75) > 1e-6 {
		t.Errorf("SubEnc = %g, %v; want 6.75", got, err)
	}
	sum, err := c.Decrypt(dec, c.AddEnc(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-13.75) > 1e-6 {
		t.Errorf("AddEnc = %g, want 13.75", sum)
	}
}
