package fixedpoint

import "sync/atomic"

// Stats counts cryptography operations so experiments can dissect where
// time goes (the paper's cost model: T_ENC, T_DEC, T_HADD, T_SMUL) and
// verify that the re-ordered accumulation really eliminates scalings.
type Stats struct {
	encryptions int64
	decryptions int64
	hadds       int64
	smuls       int64
	scalings    int64
}

func (s *Stats) addEnc(n int64)   { atomic.AddInt64(&s.encryptions, n) }
func (s *Stats) addDec(n int64)   { atomic.AddInt64(&s.decryptions, n) }
func (s *Stats) addHAdd(n int64)  { atomic.AddInt64(&s.hadds, n) }
func (s *Stats) addSMul(n int64)  { atomic.AddInt64(&s.smuls, n) }
func (s *Stats) addScale(n int64) { atomic.AddInt64(&s.scalings, n) }

// Encryptions returns the number of Encrypt calls.
func (s *Stats) Encryptions() int64 { return atomic.LoadInt64(&s.encryptions) }

// Decryptions returns the number of Decrypt calls.
func (s *Stats) Decryptions() int64 { return atomic.LoadInt64(&s.decryptions) }

// HAdds returns the number of homomorphic additions.
func (s *Stats) HAdds() int64 { return atomic.LoadInt64(&s.hadds) }

// SMuls returns the number of scalar multiplications (including scalings).
func (s *Stats) SMuls() int64 { return atomic.LoadInt64(&s.smuls) }

// Scalings returns the number of exponent-alignment scalings, the
// operations the re-ordered accumulation avoids.
func (s *Stats) Scalings() int64 { return atomic.LoadInt64(&s.scalings) }

// AddHAdds counts externally-performed homomorphic additions (callers
// that drive the scheme directly, such as the re-ordered histogram
// workspaces, report through these).
func (s *Stats) AddHAdds(n int64) { s.addHAdd(n) }

// AddSMuls counts externally-performed scalar multiplications.
func (s *Stats) AddSMuls(n int64) { s.addSMul(n) }

// AddScalings counts externally-performed exponent scalings.
func (s *Stats) AddScalings(n int64) { s.addScale(n) }

// AddDecryptions counts externally-performed decryptions.
func (s *Stats) AddDecryptions(n int64) { s.addDec(n) }

// Reset zeroes all counters.
func (s *Stats) Reset() {
	atomic.StoreInt64(&s.encryptions, 0)
	atomic.StoreInt64(&s.decryptions, 0)
	atomic.StoreInt64(&s.hadds, 0)
	atomic.StoreInt64(&s.smuls, 0)
	atomic.StoreInt64(&s.scalings, 0)
}
