package fault

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// recTransport records sent frames and serves queued receives.
type recTransport struct {
	sent [][]byte
}

func (r *recTransport) Send(p []byte) error { r.sent = append(r.sent, p); return nil }
func (r *recTransport) Receive() ([]byte, error) {
	if len(r.sent) == 0 {
		return nil, errors.New("empty")
	}
	p := r.sent[0]
	r.sent = r.sent[1:]
	return p, nil
}

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "cut=40,delay=0.1,delayfor=2ms,drop=0.05,dup=0.02,reorder=0.01,seed=7"
	c, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	want := Config{Seed: 7, Drop: 0.05, Dup: 0.02, Reorder: 0.01, Delay: 0.1,
		DelayFor: 2 * time.Millisecond, DisconnectAfter: 40}
	if c != want {
		t.Fatalf("ParseSpec = %+v, want %+v", c, want)
	}
	if got := c.String(); got != spec {
		t.Errorf("String = %q, want %q", got, spec)
	}
	if !c.Enabled() {
		t.Error("Enabled = false for a non-trivial config")
	}
	if c.WithoutCut().DisconnectAfter != 0 {
		t.Error("WithoutCut kept the disconnect")
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{"drop", "drop=2", "drop=-0.1", "bogus=1", "delayfor=xyz"} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted an invalid spec", spec)
		}
	}
	if c, err := ParseSpec(""); err != nil || c.Enabled() {
		t.Errorf("ParseSpec(\"\") = %+v, %v, want zero config", c, err)
	}
}

// TestDeterministicSchedule feeds the same frame sequence through two
// identically-seeded links and asserts identical delivery, and that a
// different seed yields a different schedule.
func TestDeterministicSchedule(t *testing.T) {
	run := func(seed int64) [][]byte {
		inner := &recTransport{}
		l := Wrap(inner, Config{Seed: seed, Drop: 0.3, Dup: 0.2, Reorder: 0.2})
		for i := 0; i < 200; i++ {
			if err := l.Send([]byte(fmt.Sprintf("frame-%03d", i))); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
		}
		return inner.sent
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault schedules")
	}
	if c := run(43); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestDisconnect(t *testing.T) {
	inner := &recTransport{}
	l := Wrap(inner, Config{DisconnectAfter: 3})
	for i := 0; i < 3; i++ {
		if err := l.Send([]byte{byte(i)}); err != nil {
			t.Fatalf("send %d before cut: %v", i, err)
		}
	}
	if err := l.Send([]byte{9}); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("send after cut = %v, want ErrDisconnected", err)
	}
	if _, err := l.Receive(); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("receive after cut = %v, want ErrDisconnected", err)
	}
	if !l.Stats().Cut {
		t.Error("stats do not record the cut")
	}
	if len(inner.sent) != 3 {
		t.Errorf("inner saw %d frames, want 3", len(inner.sent))
	}
}

// TestDuplicateIsACopy asserts the duplicated frame does not alias the
// original: downstream owns delivered buffers and may recycle them.
func TestDuplicateIsACopy(t *testing.T) {
	inner := &recTransport{}
	l := Wrap(inner, Config{Seed: 1, Dup: 1})
	if err := l.Send([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if len(inner.sent) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(inner.sent))
	}
	inner.sent[0][0] = 99
	if inner.sent[1][0] == 99 {
		t.Fatal("duplicate aliases the original buffer")
	}
}

func TestReorderSwapsAdjacentFrames(t *testing.T) {
	inner := &recTransport{}
	// Reorder every frame: frame 0 is held, released after frame 1;
	// then frame 2 held (the hold slot is free again), and so on.
	l := Wrap(inner, Config{Seed: 1, Reorder: 1})
	for i := byte(0); i < 4; i++ {
		if err := l.Send([]byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	want := [][]byte{{1}, {0}, {3}, {2}}
	if !reflect.DeepEqual(inner.sent, want) {
		t.Fatalf("delivered %v, want %v", inner.sent, want)
	}
}

func TestReceivePassThrough(t *testing.T) {
	inner := &recTransport{sent: [][]byte{{7}}}
	l := Wrap(inner, Config{Drop: 1})
	got, err := l.Receive()
	if err != nil || len(got) != 1 || got[0] != 7 {
		t.Fatalf("Receive = %v, %v", got, err)
	}
}
