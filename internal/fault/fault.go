// Package fault is a deterministic fault-injection layer for the
// cross-party transports: it wraps any Send/Receive endpoint and drops,
// delays, duplicates, reorders, or hard-disconnects outgoing frames on a
// seeded, reproducible schedule. Chaos tests assert that training under
// injected faults converges to the exact model of a fault-free run; the
// -chaos CLI knob feeds the same wrapper in real deployments, so recovery
// behaviour can be rehearsed against a live gateway.
//
// All faults act on the send path (a dropped frame is indistinguishable
// from a frame lost in flight either way); Receive passes frames through
// untouched but observes the disconnect state, so a severed link fails
// both directions. Every random decision comes from a private rand.Rand
// seeded by Config.Seed — two wrappers with equal configs produce the
// same fault schedule for the same frame sequence.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Transport is the minimal endpoint the injector wraps. It is structurally
// identical to core.Transport (declared here to keep this package free of
// protocol dependencies).
type Transport interface {
	Send(payload []byte) error
	Receive() ([]byte, error)
}

// ErrDisconnected is returned by both directions of a link after its
// scheduled hard disconnect. A fresh Wrap (a "redial") restores service.
var ErrDisconnected = errors.New("fault: link disconnected")

// Config is one link's fault schedule. The zero value injects nothing.
type Config struct {
	// Seed drives every random decision; equal seeds replay the schedule.
	Seed int64
	// Drop is the probability an outgoing frame is silently lost.
	Drop float64
	// Dup is the probability an outgoing frame is delivered twice.
	Dup float64
	// Reorder is the probability an outgoing frame is held back and
	// released after the next frame (a pairwise swap).
	Reorder float64
	// Delay is the probability an outgoing frame is stalled by DelayFor
	// before delivery.
	Delay float64
	// DelayFor is the stall applied to delayed frames (default 1ms).
	DelayFor time.Duration
	// DisconnectAfter hard-disconnects the link after this many Send
	// calls (0 = never). Both directions return ErrDisconnected from then
	// on, modeling a severed connection the caller must re-dial.
	DisconnectAfter int
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.Drop > 0 || c.Dup > 0 || c.Reorder > 0 || c.Delay > 0 || c.DisconnectAfter > 0
}

// WithoutCut returns the config with the hard disconnect removed — the
// shape redial paths use so a re-established link keeps its frame-level
// faults but is not severed again.
func (c Config) WithoutCut() Config {
	c.DisconnectAfter = 0
	return c
}

// ParseSpec parses the -chaos knob: comma-separated key=value pairs, e.g.
//
//	"seed=7,drop=0.05,dup=0.02,reorder=0.01,delay=0.1,delayfor=2ms,cut=40"
//
// Keys: seed (int), drop/dup/reorder/delay (probabilities in [0,1]),
// delayfor (duration), cut (disconnect after N sends). Unknown keys are
// errors so typos fail loudly.
func ParseSpec(spec string) (Config, error) {
	var c Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return c, nil
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Config{}, fmt.Errorf("fault: spec field %q is not key=value", field)
		}
		var err error
		switch k {
		case "seed":
			c.Seed, err = strconv.ParseInt(v, 10, 64)
		case "drop":
			c.Drop, err = parseProb(k, v)
		case "dup":
			c.Dup, err = parseProb(k, v)
		case "reorder":
			c.Reorder, err = parseProb(k, v)
		case "delay":
			c.Delay, err = parseProb(k, v)
		case "delayfor":
			c.DelayFor, err = time.ParseDuration(v)
		case "cut":
			c.DisconnectAfter, err = strconv.Atoi(v)
		default:
			return Config{}, fmt.Errorf("fault: unknown spec key %q", k)
		}
		if err != nil {
			return Config{}, fmt.Errorf("fault: spec key %q: %w", k, err)
		}
	}
	return c, nil
}

func parseProb(key, v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %g out of [0,1]", p)
	}
	return p, nil
}

// String renders the config in ParseSpec syntax.
func (c Config) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if c.Seed != 0 {
		add("seed", strconv.FormatInt(c.Seed, 10))
	}
	if c.Drop > 0 {
		add("drop", strconv.FormatFloat(c.Drop, 'g', -1, 64))
	}
	if c.Dup > 0 {
		add("dup", strconv.FormatFloat(c.Dup, 'g', -1, 64))
	}
	if c.Reorder > 0 {
		add("reorder", strconv.FormatFloat(c.Reorder, 'g', -1, 64))
	}
	if c.Delay > 0 {
		add("delay", strconv.FormatFloat(c.Delay, 'g', -1, 64))
	}
	if c.DelayFor > 0 {
		add("delayfor", c.DelayFor.String())
	}
	if c.DisconnectAfter > 0 {
		add("cut", strconv.Itoa(c.DisconnectAfter))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Stats counts the faults a link actually injected.
type Stats struct {
	Sends    int64
	Drops    int64
	Dups     int64
	Reorders int64
	Delays   int64
	Cut      bool
}

// String summarizes the injected faults.
func (s Stats) String() string {
	out := fmt.Sprintf("fault: %d sends, %d dropped, %d duplicated, %d reordered, %d delayed",
		s.Sends, s.Drops, s.Dups, s.Reorders, s.Delays)
	if s.Cut {
		out += ", link cut"
	}
	return out
}

// Link is a Transport wrapped with a fault schedule.
type Link struct {
	inner Transport
	cfg   Config

	mu    sync.Mutex
	rng   *rand.Rand
	held  []byte // frame held back for a pairwise reorder
	down  bool
	stats Stats
}

// Wrap applies a fault schedule to a transport. The wrapper serializes
// Send decisions, so a fixed frame sequence replays a fixed schedule.
func Wrap(inner Transport, cfg Config) *Link {
	if cfg.Delay > 0 && cfg.DelayFor <= 0 {
		cfg.DelayFor = time.Millisecond
	}
	return &Link{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats snapshots the injected-fault counters.
func (l *Link) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Send applies the schedule to one outgoing frame. A dropped frame
// reports success (the loss is silent, as on a real network); a severed
// link reports ErrDisconnected.
func (l *Link) Send(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.down {
		return ErrDisconnected
	}
	l.stats.Sends++
	if l.cfg.DisconnectAfter > 0 && l.stats.Sends > int64(l.cfg.DisconnectAfter) {
		l.down = true
		l.stats.Cut = true
		return ErrDisconnected
	}
	// Draw each fault in a fixed order so the schedule depends only on
	// the seed and the frame index, never on timing.
	drop := l.rng.Float64() < l.cfg.Drop
	delay := l.rng.Float64() < l.cfg.Delay
	dup := l.rng.Float64() < l.cfg.Dup
	reorder := l.rng.Float64() < l.cfg.Reorder

	if drop {
		l.stats.Drops++
		return nil
	}
	if delay {
		l.stats.Delays++
		// Sleeping under the lock serializes the link like a stalled
		// socket would: later frames queue behind the stalled one.
		time.Sleep(l.cfg.DelayFor)
	}
	if reorder && l.held == nil {
		// Hold this frame; it is released right after the next one. If no
		// frame ever follows, the sender's retry layer re-sends it.
		l.stats.Reorders++
		l.held = payload
		return nil
	}
	if err := l.deliver(payload, dup); err != nil {
		return err
	}
	if l.held != nil {
		held := l.held
		l.held = nil
		return l.deliver(held, false)
	}
	return nil
}

// deliver forwards a frame, optionally duplicated. The duplicate is a
// deep copy: downstream links own (and may recycle) the buffers handed to
// them, so the two deliveries must not share backing memory.
func (l *Link) deliver(payload []byte, dup bool) error {
	// The copy must happen before the first Send: ownership of a sent
	// buffer transfers to the receiver, which may recycle it immediately.
	var second []byte
	if dup {
		second = append([]byte(nil), payload...)
	}
	if err := l.inner.Send(payload); err != nil {
		return err
	}
	if dup {
		l.stats.Dups++
		return l.inner.Send(second)
	}
	return nil
}

// Close forwards to the wrapped transport's Close method (either
// signature), so a shutdown above the fault layer reaches the endpoint
// underneath it.
func (l *Link) Close() {
	switch c := l.inner.(type) {
	case interface{ Close() error }:
		c.Close()
	case interface{ Close() }:
		c.Close()
	}
}

// Receive passes frames through, failing once the link is severed. A
// frame that arrives after the disconnect is discarded, like bytes
// buffered in a socket that was torn down.
func (l *Link) Receive() ([]byte, error) {
	l.mu.Lock()
	down := l.down
	l.mu.Unlock()
	if down {
		return nil, ErrDisconnected
	}
	payload, err := l.inner.Receive()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	down = l.down
	l.mu.Unlock()
	if down {
		return nil, ErrDisconnected
	}
	return payload, nil
}
