// Package fsfault is the storage-side sibling of internal/fault: a
// deterministic fault-injection layer for the filesystem operations the
// out-of-core store (internal/ooc) and the checkpoint store
// (internal/checkpoint) thread their I/O through. An Injector wraps any
// FS and, on a seeded reproducible schedule, flips bits and truncates
// buffers on the read path, fails or tears writes on the write path,
// exhausts a simulated disk budget (ENOSPC, refunded when files are
// removed so debris sweeps genuinely free space), loses the data of a
// rename whose payload was never synced (a torn write at rename), and
// kills the process model outright after N mutating operations (every
// later call fails with ErrCrashed, leaving temp debris behind exactly
// as a real crash would).
//
// Storage chaos tests assert the same contract the network chaos tests
// established for links: under any injected schedule the storage layers
// either self-heal (retry, quarantine-and-rebuild, generation rollback)
// or fail with a typed error — never a panic — and every recovered run
// reproduces the fault-free model byte for byte.
package fsfault

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// FS is the filesystem surface the storage layers perform their I/O
// through. The method set mirrors the os package; OS is the passthrough
// implementation, Injector the fault-injecting wrapper. Durable writes
// follow the temp-file idiom: CreateTemp, Write, Sync, Close, Rename.
type FS interface {
	ReadFile(name string) ([]byte, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (os.FileInfo, error)
}

// File is the writable handle CreateTemp returns.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// OS is the passthrough FS over the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

// Injected-fault sentinels. ErrNoSpace wraps syscall.ENOSPC, so recovery
// code written against errors.Is(err, syscall.ENOSPC) handles real disk
// exhaustion and the injected kind identically.
var (
	// ErrInjectedIO is the scheduled EIO of a read or write.
	ErrInjectedIO = errors.New("fsfault: injected I/O error")
	// ErrNoSpace is the simulated disk-full condition.
	ErrNoSpace = fmt.Errorf("fsfault: injected disk full: %w", syscall.ENOSPC)
	// ErrCrashed fails every operation after the scheduled crash point;
	// the wrapped process model is dead until a fresh FS ("reboot").
	ErrCrashed = errors.New("fsfault: simulated crash")
)

// Config is one injector's fault schedule. The zero value injects
// nothing. Probabilities are per-operation; every random decision comes
// from a private rand.Rand seeded by Seed, so equal configs replay equal
// schedules over equal operation sequences.
type Config struct {
	// Seed drives every random decision.
	Seed int64
	// ReadErr is the probability a ReadFile fails with ErrInjectedIO.
	ReadErr float64
	// ShortRead is the probability a ReadFile returns a strict prefix of
	// the file (a torn or truncated read).
	ShortRead float64
	// FlipBit is the probability a ReadFile returns the file with one
	// random bit flipped (media bit rot; the on-disk bytes are intact, so
	// a retry can heal it).
	FlipBit float64
	// WriteErr is the probability a File.Write fails with ErrInjectedIO
	// after persisting nothing.
	WriteErr float64
	// ShortWrite is the probability a File.Write persists only a strict
	// prefix of the buffer while reporting success — the torn write a
	// crash between write and sync leaves behind.
	ShortWrite float64
	// TornRename is the probability a Rename publishes a truncated file:
	// the data blocks never reached disk before the metadata operation
	// (the classic rename-without-fsync anomaly).
	TornRename float64
	// DiskBudget caps total bytes written (0 = unlimited). Writes beyond
	// the budget fail with ErrNoSpace; Remove and RemoveAll refund the
	// bytes of the files they delete, so sweeping debris frees space.
	DiskBudget int64
	// CrashAfter kills the injector after this many mutating operations
	// (writes, syncs, renames, removes, creates; 0 = never): every
	// subsequent operation, reads included, fails with ErrCrashed.
	CrashAfter int
	// NoSync turns Sync into a silent no-op, so a following crash or torn
	// rename models data that never left the page cache.
	NoSync bool
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.ReadErr > 0 || c.ShortRead > 0 || c.FlipBit > 0 || c.WriteErr > 0 ||
		c.ShortWrite > 0 || c.TornRename > 0 || c.DiskBudget > 0 || c.CrashAfter > 0 || c.NoSync
}

// ParseSpec parses the -fschaos knob, comma-separated key=value pairs in
// the same syntax as fault.ParseSpec, e.g.
//
//	"seed=7,readerr=0.05,flip=0.02,shortread=0.02,shortwrite=0.01,tornrename=0.02,enospc=1048576,crash=200,nosync=1"
//
// Keys: seed (int), readerr/shortread/flip/writeerr/shortwrite/tornrename
// (probabilities in [0,1]), enospc (disk budget in bytes), crash (kill
// after N mutating ops), nosync (0/1). Unknown keys are errors so typos
// fail loudly.
func ParseSpec(spec string) (Config, error) {
	var c Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return c, nil
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Config{}, fmt.Errorf("fsfault: spec field %q is not key=value", field)
		}
		var err error
		switch k {
		case "seed":
			c.Seed, err = strconv.ParseInt(v, 10, 64)
		case "readerr":
			c.ReadErr, err = parseProb(v)
		case "shortread":
			c.ShortRead, err = parseProb(v)
		case "flip":
			c.FlipBit, err = parseProb(v)
		case "writeerr":
			c.WriteErr, err = parseProb(v)
		case "shortwrite":
			c.ShortWrite, err = parseProb(v)
		case "tornrename":
			c.TornRename, err = parseProb(v)
		case "enospc":
			c.DiskBudget, err = strconv.ParseInt(v, 10, 64)
		case "crash":
			c.CrashAfter, err = strconv.Atoi(v)
		case "nosync":
			var b bool
			b, err = strconv.ParseBool(v)
			c.NoSync = b
		default:
			return Config{}, fmt.Errorf("fsfault: unknown spec key %q", k)
		}
		if err != nil {
			return Config{}, fmt.Errorf("fsfault: spec key %q: %w", k, err)
		}
	}
	return c, nil
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %g out of [0,1]", p)
	}
	return p, nil
}

// String renders the config in ParseSpec syntax.
func (c Config) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if c.Seed != 0 {
		add("seed", strconv.FormatInt(c.Seed, 10))
	}
	prob := func(k string, p float64) {
		if p > 0 {
			add(k, strconv.FormatFloat(p, 'g', -1, 64))
		}
	}
	prob("readerr", c.ReadErr)
	prob("shortread", c.ShortRead)
	prob("flip", c.FlipBit)
	prob("writeerr", c.WriteErr)
	prob("shortwrite", c.ShortWrite)
	prob("tornrename", c.TornRename)
	if c.DiskBudget > 0 {
		add("enospc", strconv.FormatInt(c.DiskBudget, 10))
	}
	if c.CrashAfter > 0 {
		add("crash", strconv.Itoa(c.CrashAfter))
	}
	if c.NoSync {
		add("nosync", "1")
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Stats counts the faults an injector actually delivered.
type Stats struct {
	Reads       int64
	ReadErrs    int64
	ShortReads  int64
	FlippedBits int64
	WriteErrs   int64
	ShortWrites int64
	TornRenames int64
	NoSpace     int64
	Crashed     bool
	// BytesUsed is the current simulated disk occupancy (DiskBudget > 0).
	BytesUsed int64
}

// String summarizes the injected faults.
func (s Stats) String() string {
	out := fmt.Sprintf("fsfault: %d reads, %d EIO, %d short reads, %d bit flips, %d write errors, %d torn writes, %d torn renames, %d ENOSPC",
		s.Reads, s.ReadErrs, s.ShortReads, s.FlippedBits, s.WriteErrs, s.ShortWrites, s.TornRenames, s.NoSpace)
	if s.Crashed {
		out += ", crashed"
	}
	return out
}

// Injector wraps an FS with a seeded fault schedule. All scheduling
// decisions serialize on a mutex, so a fixed operation sequence replays a
// fixed schedule regardless of wall-clock timing.
type Injector struct {
	inner FS
	cfg   Config

	mu      sync.Mutex
	rng     *rand.Rand
	mutOps  int
	crashed bool
	stats   Stats
}

// Wrap applies a fault schedule to a filesystem.
func Wrap(inner FS, cfg Config) *Injector {
	if inner == nil {
		inner = OS
	}
	return &Injector{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats snapshots the injected-fault counters.
func (j *Injector) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Crashed reports whether the scheduled crash point has been reached.
func (j *Injector) Crashed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.crashed
}

// mutate counts one mutating operation against the crash schedule,
// reporting whether the injector is (now) dead. Caller holds j.mu.
func (j *Injector) mutate() bool {
	if j.crashed {
		return true
	}
	j.mutOps++
	if j.cfg.CrashAfter > 0 && j.mutOps > j.cfg.CrashAfter {
		j.crashed = true
		j.stats.Crashed = true
	}
	return j.crashed
}

// ReadFile reads a file, possibly failing, truncating, or corrupting the
// returned buffer. Corruption happens on the returned copy only — the
// on-disk bytes stay intact, which is what makes bounded read-retry a
// sound healing strategy for this fault class.
func (j *Injector) ReadFile(name string) ([]byte, error) {
	j.mu.Lock()
	if j.crashed {
		j.mu.Unlock()
		return nil, ErrCrashed
	}
	j.stats.Reads++
	fail := j.rng.Float64() < j.cfg.ReadErr
	short := j.rng.Float64() < j.cfg.ShortRead
	flip := j.rng.Float64() < j.cfg.FlipBit
	cut := j.rng.Float64() // fraction kept by a short read
	bit := j.rng.Int63()   // bit position source for a flip
	if fail {
		j.stats.ReadErrs++
	} else {
		if short {
			j.stats.ShortReads++
		}
		if flip {
			j.stats.FlippedBits++
		}
	}
	j.mu.Unlock()

	if fail {
		return nil, fmt.Errorf("%w: %s", ErrInjectedIO, name)
	}
	buf, err := j.inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if short && len(buf) > 0 {
		buf = buf[:int(cut*float64(len(buf)))]
	}
	if flip && len(buf) > 0 {
		k := int(bit % int64(len(buf)*8))
		buf[k/8] ^= 1 << (k % 8)
	}
	return buf, nil
}

// CreateTemp opens a temp file whose writes ride the injector's schedule.
func (j *Injector) CreateTemp(dir, pattern string) (File, error) {
	j.mu.Lock()
	dead := j.mutate()
	j.mu.Unlock()
	if dead {
		return nil, ErrCrashed
	}
	f, err := j.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{j: j, inner: f}, nil
}

// Rename publishes a file, possibly tearing its contents first.
func (j *Injector) Rename(oldpath, newpath string) error {
	j.mu.Lock()
	dead := j.mutate()
	torn := !dead && j.rng.Float64() < j.cfg.TornRename
	cut := j.rng.Float64()
	if torn {
		j.stats.TornRenames++
	}
	j.mu.Unlock()
	if dead {
		return ErrCrashed
	}
	if torn {
		// The rename itself succeeds — the anomaly is that the file's data
		// blocks never hit disk, so the published name holds a prefix.
		if fi, err := j.inner.Stat(oldpath); err == nil {
			if err := os.Truncate(oldpath, int64(cut*float64(fi.Size()))); err != nil {
				return err
			}
		}
	}
	return j.inner.Rename(oldpath, newpath)
}

// Remove deletes a file, refunding its bytes to the disk budget.
func (j *Injector) Remove(name string) error {
	j.mu.Lock()
	dead := j.mutate()
	j.mu.Unlock()
	if dead {
		return ErrCrashed
	}
	var size int64
	if j.cfg.DiskBudget > 0 {
		if fi, err := j.inner.Stat(name); err == nil {
			size = fi.Size()
		}
	}
	err := j.inner.Remove(name)
	if err == nil && size > 0 {
		j.mu.Lock()
		j.stats.BytesUsed -= size
		if j.stats.BytesUsed < 0 {
			j.stats.BytesUsed = 0
		}
		j.mu.Unlock()
	}
	return err
}

// RemoveAll deletes a tree, refunding its bytes to the disk budget.
func (j *Injector) RemoveAll(path string) error {
	j.mu.Lock()
	dead := j.mutate()
	j.mu.Unlock()
	if dead {
		return ErrCrashed
	}
	var size int64
	if j.cfg.DiskBudget > 0 {
		size = treeSize(j.inner, path)
	}
	err := j.inner.RemoveAll(path)
	if err == nil && size > 0 {
		j.mu.Lock()
		j.stats.BytesUsed -= size
		if j.stats.BytesUsed < 0 {
			j.stats.BytesUsed = 0
		}
		j.mu.Unlock()
	}
	return err
}

func treeSize(f FS, path string) int64 {
	fi, err := f.Stat(path)
	if err != nil {
		return 0
	}
	if !fi.IsDir() {
		return fi.Size()
	}
	entries, err := f.ReadDir(path)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		total += treeSize(f, path+string(os.PathSeparator)+e.Name())
	}
	return total
}

// MkdirAll creates a directory tree.
func (j *Injector) MkdirAll(path string, perm os.FileMode) error {
	j.mu.Lock()
	dead := j.mutate()
	j.mu.Unlock()
	if dead {
		return ErrCrashed
	}
	return j.inner.MkdirAll(path, perm)
}

// ReadDir lists a directory (metadata reads are not faulted — directory
// entries live in the journal, not the data blocks this layer corrupts).
func (j *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	j.mu.Lock()
	dead := j.crashed
	j.mu.Unlock()
	if dead {
		return nil, ErrCrashed
	}
	return j.inner.ReadDir(name)
}

// Stat returns file metadata.
func (j *Injector) Stat(name string) (os.FileInfo, error) {
	j.mu.Lock()
	dead := j.crashed
	j.mu.Unlock()
	if dead {
		return nil, ErrCrashed
	}
	return j.inner.Stat(name)
}

// faultFile applies the write-path schedule to one temp file.
type faultFile struct {
	j     *Injector
	inner File
}

func (f *faultFile) Name() string { return f.inner.Name() }

// Write persists the buffer, possibly failing, tearing, or exhausting the
// disk budget. A torn write persists a strict prefix but reports full
// success — the caller's Sync+rename then publishes a file whose CRC
// cannot verify, exactly the artifact a crash between write and sync
// leaves behind.
func (f *faultFile) Write(p []byte) (int, error) {
	j := f.j
	j.mu.Lock()
	dead := j.mutate()
	fail := !dead && j.rng.Float64() < j.cfg.WriteErr
	short := !dead && j.rng.Float64() < j.cfg.ShortWrite
	cut := j.rng.Float64()
	noSpace := false
	if !dead && !fail && j.cfg.DiskBudget > 0 {
		if j.stats.BytesUsed+int64(len(p)) > j.cfg.DiskBudget {
			noSpace = true
			j.stats.NoSpace++
		} else {
			j.stats.BytesUsed += int64(len(p))
		}
	}
	if fail {
		j.stats.WriteErrs++
	} else if short && !noSpace {
		j.stats.ShortWrites++
	}
	j.mu.Unlock()

	if dead {
		return 0, ErrCrashed
	}
	if fail {
		return 0, fmt.Errorf("%w: %s", ErrInjectedIO, f.inner.Name())
	}
	if noSpace {
		return 0, fmt.Errorf("%w: %s", ErrNoSpace, f.inner.Name())
	}
	if short && len(p) > 1 {
		n := int(cut * float64(len(p)))
		if _, err := f.inner.Write(p[:n]); err != nil {
			return 0, err
		}
		return len(p), nil // the tear is silent
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	j := f.j
	j.mu.Lock()
	dead := j.mutate()
	noSync := j.cfg.NoSync
	j.mu.Unlock()
	if dead {
		return ErrCrashed
	}
	if noSync {
		return nil
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error {
	// Closing is not a mutating op for the crash schedule: a dying process
	// has its descriptors closed by the kernel either way.
	return f.inner.Close()
}
