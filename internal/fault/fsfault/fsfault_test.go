package fsfault

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// writeThrough performs the durable-write idiom the storage layers use:
// temp file, write, sync, close, rename.
func writeThrough(f FS, path string, buf []byte) error {
	tmp, err := f.CreateTemp(filepath.Dir(path), ".t-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		f.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		f.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		f.Remove(name)
		return err
	}
	return f.Rename(name, path)
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	want := []byte("hello storage")
	if err := writeThrough(OS, path, want); err != nil {
		t.Fatal(err)
	}
	got, err := OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q", got, want)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "crash=200,enospc=1048576,flip=0.02,nosync=1,readerr=0.05,seed=7,shortread=0.02,shortwrite=0.01,tornrename=0.03,writeerr=0.04"
	c, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 7 || c.ReadErr != 0.05 || c.FlipBit != 0.02 || c.DiskBudget != 1<<20 ||
		c.CrashAfter != 200 || !c.NoSync || c.TornRename != 0.03 {
		t.Fatalf("parsed %+v", c)
	}
	if got := c.String(); got != spec {
		t.Fatalf("String = %q, want %q", got, spec)
	}
	if !c.Enabled() {
		t.Fatal("config not Enabled")
	}
	if c, err := ParseSpec(""); err != nil || c.Enabled() {
		t.Fatalf("empty spec = %+v, %v", c, err)
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, spec := range []string{"bogus=1", "drop=0.5", "readerr=1.5", "seed", "crash=x"} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

// Equal seeds must replay equal fault schedules over equal op sequences.
func TestDeterministicSchedule(t *testing.T) {
	run := func() Stats {
		dir := t.TempDir()
		j := Wrap(OS, Config{Seed: 42, ReadErr: 0.2, ShortRead: 0.2, FlipBit: 0.2})
		path := filepath.Join(dir, "f.bin")
		if err := writeThrough(j, path, bytes.Repeat([]byte{0xAB}, 1024)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			j.ReadFile(path)
		}
		return j.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("schedules diverged: %+v vs %+v", a, b)
	}
	if a.ReadErrs == 0 || a.ShortReads == 0 || a.FlippedBits == 0 {
		t.Fatalf("no faults delivered: %+v", a)
	}
}

// A bit flip corrupts the returned copy only; the on-disk bytes stay
// intact, so a retry heals it.
func TestFlipBitLeavesDiskIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	want := bytes.Repeat([]byte{0x5C}, 256)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	j := Wrap(OS, Config{Seed: 3, FlipBit: 1})
	got, err := j.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, want) {
		t.Fatal("flip=1 returned intact bytes")
	}
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(disk, want) {
		t.Fatal("bit flip reached the disk")
	}
}

// A short write persists a prefix but reports success — the published
// file is torn.
func TestShortWriteTearsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	j := Wrap(OS, Config{Seed: 9, ShortWrite: 1})
	buf := bytes.Repeat([]byte{1}, 4096)
	if err := writeThrough(j, path, buf); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(buf) {
		t.Fatalf("short write persisted %d of %d bytes", len(got), len(buf))
	}
	if j.Stats().ShortWrites == 0 {
		t.Fatal("no short write recorded")
	}
}

// A torn rename publishes a truncated file.
func TestTornRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	j := Wrap(OS, Config{Seed: 5, TornRename: 1})
	buf := bytes.Repeat([]byte{2}, 4096)
	if err := writeThrough(j, path, buf); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(buf) {
		t.Fatalf("torn rename persisted %d of %d bytes", len(got), len(buf))
	}
}

// The disk budget fails writes with an error satisfying
// errors.Is(err, syscall.ENOSPC) and refunds removed files.
func TestDiskBudgetENOSPCAndRefund(t *testing.T) {
	dir := t.TempDir()
	j := Wrap(OS, Config{Seed: 1, DiskBudget: 1024})
	a := filepath.Join(dir, "a.bin")
	if err := writeThrough(j, a, bytes.Repeat([]byte{3}, 800)); err != nil {
		t.Fatal(err)
	}
	b := filepath.Join(dir, "b.bin")
	err := writeThrough(j, b, bytes.Repeat([]byte{4}, 800))
	if err == nil {
		t.Fatal("write past budget succeeded")
	}
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("budget error = %v, want ENOSPC", err)
	}
	// Freeing a.bin refunds its bytes; the retry fits.
	if err := j.Remove(a); err != nil {
		t.Fatal(err)
	}
	if err := writeThrough(j, b, bytes.Repeat([]byte{4}, 800)); err != nil {
		t.Fatalf("write after refund: %v", err)
	}
}

// After the crash point every operation fails with ErrCrashed and the
// half-written temp file stays behind as debris.
func TestCrashLeavesDebris(t *testing.T) {
	dir := t.TempDir()
	// CreateTemp(1) + one Write(2) pass, then crash: Sync(3) dies.
	j := Wrap(OS, Config{Seed: 2, CrashAfter: 2})
	tmp, err := j.CreateTemp(dir, ".t-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Write([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync after crash = %v, want ErrCrashed", err)
	}
	tmp.Close()
	if _, err := j.ReadFile(tmp.Name()); !errors.Is(err, ErrCrashed) {
		t.Fatalf("ReadFile after crash = %v, want ErrCrashed", err)
	}
	if !j.Crashed() {
		t.Fatal("injector not Crashed")
	}
	// The debris is visible to a fresh ("rebooted") FS.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("want 1 debris file, got %d", len(entries))
	}
}

// NoSync + crash models data lost in the page cache: Sync reports
// success but is a no-op (observable only via the config; here we just
// assert the call chain stays alive).
func TestNoSync(t *testing.T) {
	dir := t.TempDir()
	j := Wrap(OS, Config{Seed: 4, NoSync: true})
	if err := writeThrough(j, filepath.Join(dir, "f.bin"), []byte("x")); err != nil {
		t.Fatal(err)
	}
}
