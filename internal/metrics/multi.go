package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Multi-output and ranking metrics: softmax logloss and argmax accuracy
// over a k×n margin matrix (margins[c][i] is output c of instance i),
// and NDCG@k over contiguous query groups.

// Softmax converts one instance's k raw margins to probabilities in
// place-safe fashion (out may alias margins). The max-shift keeps the
// exponentials finite for any margin range.
func Softmax(margins, out []float64) {
	maxM := margins[0]
	for _, m := range margins[1:] {
		if m > maxM {
			maxM = m
		}
	}
	var sum float64
	for c, m := range margins {
		e := math.Exp(m - maxM)
		out[c] = e
		sum += e
	}
	for c := range out {
		out[c] /= sum
	}
}

func checkMulti(margins [][]float64, labels []float64) error {
	if len(margins) < 2 {
		return errors.New("metrics: multiclass needs at least 2 outputs")
	}
	n := len(labels)
	if n == 0 {
		return errors.New("metrics: empty input")
	}
	for c := range margins {
		if len(margins[c]) != n {
			return fmt.Errorf("metrics: output %d has %d margins for %d labels", c, len(margins[c]), n)
		}
	}
	return nil
}

// SoftmaxLogLoss computes the mean multiclass cross-entropy (mlogloss)
// from a k×n margin matrix. Labels must be integers in [0, k).
func SoftmaxLogLoss(margins [][]float64, labels []float64) (float64, error) {
	if err := checkMulti(margins, labels); err != nil {
		return 0, err
	}
	k := len(margins)
	row := make([]float64, k)
	var sum float64
	for i, y := range labels {
		cls := int(y)
		if float64(cls) != y || cls < 0 || cls >= k {
			return 0, fmt.Errorf("metrics: label %v is not a class in [0,%d)", y, k)
		}
		for c := 0; c < k; c++ {
			row[c] = margins[c][i]
		}
		Softmax(row, row)
		sum += -math.Log(math.Max(row[cls], 1e-15))
	}
	return sum / float64(len(labels)), nil
}

// MulticlassAccuracy computes argmax accuracy from a k×n margin matrix.
// Labels must be integers in [0, k).
func MulticlassAccuracy(margins [][]float64, labels []float64) (float64, error) {
	if err := checkMulti(margins, labels); err != nil {
		return 0, err
	}
	k := len(margins)
	correct := 0
	for i, y := range labels {
		cls := int(y)
		if float64(cls) != y || cls < 0 || cls >= k {
			return 0, fmt.Errorf("metrics: label %v is not a class in [0,%d)", y, k)
		}
		best := 0
		for c := 1; c < k; c++ {
			if margins[c][i] > margins[best][i] {
				best = c
			}
		}
		if best == cls {
			correct++
		}
	}
	return float64(correct) / float64(len(labels)), nil
}

// NDCGAt computes the mean NDCG@k over contiguous query groups: groups
// lists the group sizes in row order and must sum to len(scores). Labels
// are non-negative relevance grades; the gain of grade r is 2^r − 1.
// Groups whose ideal DCG is zero (all grades zero) count as NDCG 1 — the
// ranking cannot be wrong when nothing is relevant.
func NDCGAt(k int, scores, labels []float64, groups []int) (float64, error) {
	if len(scores) != len(labels) {
		return 0, errors.New("metrics: scores and labels length mismatch")
	}
	if k < 1 {
		return 0, fmt.Errorf("metrics: NDCG cutoff %d must be positive", k)
	}
	total := 0
	for _, g := range groups {
		if g <= 0 {
			return 0, fmt.Errorf("metrics: group size %d must be positive", g)
		}
		total += g
	}
	if total != len(scores) {
		return 0, fmt.Errorf("metrics: groups cover %d rows of %d", total, len(scores))
	}
	if len(groups) == 0 {
		return 0, errors.New("metrics: empty input")
	}
	var sum float64
	start := 0
	for _, g := range groups {
		sum += ndcgGroup(k, scores[start:start+g], labels[start:start+g])
		start += g
	}
	return sum / float64(len(groups)), nil
}

func ndcgGroup(k int, scores, labels []float64) float64 {
	n := len(scores)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Sort by score descending; ties broken by row order for determinism.
	sort.Slice(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return order[a] < order[b]
	})
	dcg := dcgAt(k, order, labels)
	sort.Slice(order, func(a, b int) bool {
		if labels[order[a]] != labels[order[b]] {
			return labels[order[a]] > labels[order[b]]
		}
		return order[a] < order[b]
	})
	idcg := dcgAt(k, order, labels)
	if idcg == 0 {
		return 1
	}
	return dcg / idcg
}

func dcgAt(k int, order []int, labels []float64) float64 {
	var dcg float64
	for pos, i := range order {
		if pos >= k {
			break
		}
		dcg += (math.Exp2(labels[i]) - 1) / math.Log2(float64(pos)+2)
	}
	return dcg
}
