package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAUCPerfectAndReversed(t *testing.T) {
	labels := []float64{0, 0, 1, 1}
	if auc, err := AUC([]float64{0.1, 0.2, 0.8, 0.9}, labels); err != nil || auc != 1 {
		t.Errorf("perfect AUC = %g, %v", auc, err)
	}
	if auc, err := AUC([]float64{0.9, 0.8, 0.2, 0.1}, labels); err != nil || auc != 0 {
		t.Errorf("reversed AUC = %g, %v", auc, err)
	}
}

func TestAUCRandomIsHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20000
	scores := make([]float64, n)
	labels := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = float64(rng.Intn(2))
	}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.02 {
		t.Errorf("random AUC = %g, want ~0.5", auc)
	}
}

func TestAUCTies(t *testing.T) {
	// All scores identical -> AUC must be exactly 0.5.
	auc, err := AUC([]float64{3, 3, 3, 3}, []float64{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0.5 {
		t.Errorf("all-tied AUC = %g, want 0.5", auc)
	}
}

func TestAUCErrors(t *testing.T) {
	if _, err := AUC([]float64{1}, []float64{1, 0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := AUC(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := AUC([]float64{1, 2}, []float64{1, 1}); err == nil {
		t.Error("single-class input accepted")
	}
	if _, err := AUC([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("non-binary label accepted")
	}
}

func TestAUCInvariantToMonotoneTransform(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(100)
		scores := make([]float64, n)
		labels := make([]float64, n)
		pos := false
		negSeen := false
		for i := range scores {
			scores[i] = rng.NormFloat64()
			labels[i] = float64(rng.Intn(2))
			if labels[i] == 1 {
				pos = true
			} else {
				negSeen = true
			}
		}
		if !pos || !negSeen {
			return true
		}
		a1, err1 := AUC(scores, labels)
		trans := make([]float64, n)
		for i, s := range scores {
			trans[i] = Sigmoid(s)*10 + 3
		}
		a2, err2 := AUC(trans, labels)
		return err1 == nil && err2 == nil && math.Abs(a1-a2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLogLoss(t *testing.T) {
	// Margin 0 -> p=0.5 -> loss = ln 2 regardless of label.
	ll, err := LogLoss([]float64{0, 0}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ll-math.Ln2) > 1e-12 {
		t.Errorf("LogLoss at margin 0 = %g, want ln2", ll)
	}
	// Confident correct predictions approach 0 loss.
	ll2, _ := LogLoss([]float64{50, -50}, []float64{1, 0})
	if ll2 > 1e-10 {
		t.Errorf("confident correct loss = %g", ll2)
	}
	// Extreme margins must not produce NaN/Inf.
	ll3, _ := LogLoss([]float64{1000, -1000}, []float64{0, 1})
	if math.IsNaN(ll3) || math.IsInf(ll3, 0) {
		t.Errorf("extreme-margin loss = %g", ll3)
	}
	if _, err := LogLoss(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := LogLoss([]float64{1}, []float64{}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Errorf("zero-error RMSE = %g, %v", got, err)
	}
	got, _ = RMSE([]float64{0, 0}, []float64{3, 4})
	if math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %g", got)
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestAccuracy(t *testing.T) {
	acc, err := Accuracy([]float64{2, -2, 1, -1}, []float64{1, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0.5 {
		t.Errorf("Accuracy = %g, want 0.5", acc)
	}
	if _, err := Accuracy(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestSigmoid(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Error("Sigmoid(0) != 0.5")
	}
	if s := Sigmoid(100); s <= 0.999 {
		t.Errorf("Sigmoid(100) = %g", s)
	}
	if s := Sigmoid(-100); s >= 0.001 {
		t.Errorf("Sigmoid(-100) = %g", s)
	}
}
