// Package metrics implements the evaluation metrics used in the paper's
// experiments: AUC, logistic loss, RMSE and classification accuracy.
// Predictions are raw margins (ŷ before the sigmoid) unless noted.
package metrics

import (
	"errors"
	"math"
	"sort"
)

// Sigmoid is the logistic link δ(x) = 1/(1+e^{ -x}).
func Sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}

// AUC computes the area under the ROC curve from raw scores (any monotone
// transform of probabilities gives the same AUC). Labels must be 0 or 1.
// Ties are handled by the rank-statistic formulation.
func AUC(scores, labels []float64) (float64, error) {
	if len(scores) != len(labels) {
		return 0, errors.New("metrics: scores and labels length mismatch")
	}
	n := len(scores)
	if n == 0 {
		return 0, errors.New("metrics: empty input")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	// Average ranks over ties, then AUC = (sumRanks(pos) - P(P+1)/2)/(P·N).
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[idx[k]] = avg
		}
		i = j
	}
	var pos, sumPos float64
	for i, y := range labels {
		if y == 1 {
			pos++
			sumPos += ranks[i]
		} else if y != 0 {
			return 0, errors.New("metrics: AUC labels must be 0 or 1")
		}
	}
	neg := float64(n) - pos
	if pos == 0 || neg == 0 {
		return 0, errors.New("metrics: AUC undefined with a single class")
	}
	return (sumPos - pos*(pos+1)/2) / (pos * neg), nil
}

// LogLoss computes the mean logistic loss from raw margins.
func LogLoss(margins, labels []float64) (float64, error) {
	if len(margins) != len(labels) {
		return 0, errors.New("metrics: margins and labels length mismatch")
	}
	if len(margins) == 0 {
		return 0, errors.New("metrics: empty input")
	}
	var sum float64
	for i, m := range margins {
		// Numerically stable: log(1+e^m) - y·m.
		sum += stableLog1pExp(m) - labels[i]*m
	}
	return sum / float64(len(margins)), nil
}

func stableLog1pExp(x float64) float64 {
	if x > 35 {
		return x
	}
	if x < -35 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}

// RMSE computes the root mean squared error of raw predictions.
func RMSE(preds, labels []float64) (float64, error) {
	if len(preds) != len(labels) {
		return 0, errors.New("metrics: preds and labels length mismatch")
	}
	if len(preds) == 0 {
		return 0, errors.New("metrics: empty input")
	}
	var sum float64
	for i := range preds {
		d := preds[i] - labels[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(preds))), nil
}

// Accuracy computes 0/1 accuracy thresholding margins at 0 (probability
// 0.5).
func Accuracy(margins, labels []float64) (float64, error) {
	if len(margins) != len(labels) {
		return 0, errors.New("metrics: margins and labels length mismatch")
	}
	if len(margins) == 0 {
		return 0, errors.New("metrics: empty input")
	}
	correct := 0
	for i, m := range margins {
		pred := 0.0
		if m > 0 {
			pred = 1
		}
		if pred == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(margins)), nil
}
