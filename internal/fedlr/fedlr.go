// Package fedlr implements two-party vertical federated logistic
// regression with additively homomorphic encryption, the generalization
// the VF²Boost paper sketches in its Section 5 discussions: "for the
// vertical federated LR, we can accelerate the reduction of encrypted
// gradients in a mini-batch by the re-ordered accumulation technique".
//
// The protocol follows the coordinator-free scheme of Yang et al. (2019,
// reference [84] of the paper), with the logistic gradient factor
// linearized by the first-order Taylor expansion σ(u) ≈ 0.5 + 0.25·u:
//
//	d_i = 0.25·(u_A_i + u_B_i) + 0.5 - y_i
//
// Each party holds its own Paillier key pair. To update Party A's
// weights, Party B ships Enc_B(0.25·u_B_i + 0.5 - y_i); A completes d_i
// under B's key with its plaintext partial margins, reduces
// Σ_i x_ij ⊗ [[d_i]] per feature — the encrypted-gradient reduction the
// re-ordered accumulation accelerates — masks the result with one-time
// noise, and has B decrypt the masked gradient. B's update is symmetric
// under A's key. Neither party sees the other's features, margins or (for
// A) the labels; each sees only noise-masked gradient sums of its own
// features.
package fedlr

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"

	"vf2boost/internal/dataset"
	"vf2boost/internal/fixedpoint"
	"vf2boost/internal/he"
)

// xScale is B^xExp with the default base 16.
var xScale = math.Pow(fixedpoint.DefaultBase, xExp)

// Config configures vertical federated LR training.
type Config struct {
	// Epochs is the number of passes over the training instances.
	Epochs int
	// BatchSize is the mini-batch size.
	BatchSize int
	// LearningRate scales the gradient step.
	LearningRate float64
	// L2 is the ridge penalty coefficient; besides regularizing, it
	// bounds the gradients, which is what makes the paper's packing
	// technique applicable to LR (Section 5.2 discussion).
	L2 float64
	// Scheme is "paillier" or "mock"; KeyBits sizes the Paillier moduli.
	Scheme  string
	KeyBits int
	// Reordered toggles the re-ordered accumulation of encrypted
	// gradient reductions (the ablation of the paper's LR claim).
	Reordered bool
	// Packed applies the polynomial cipher packing to the masked
	// gradient exchange — the paper's Section 5.2 discussion: "model
	// gradients can be bounded by regularization techniques in vertical
	// federated LR ... so that our packing technique can be applied".
	// Gradient contributions are clipped to ±GradClip so the masked sums
	// are provably bounded, then shifted non-negative and packed
	// t-per-ciphertext, cutting the peer's decryptions by t×.
	Packed bool
	// GradClip bounds each instance's linearized gradient contribution
	// (applied whether or not Packed is set, so the two modes train the
	// same model).
	GradClip float64
	Seed     int64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Epochs:       3,
		BatchSize:    256,
		LearningRate: 0.5,
		L2:           1e-3,
		Scheme:       "paillier",
		KeyBits:      512,
		Reordered:    true,
		Packed:       true,
		GradClip:     2,
		Seed:         1,
	}
}

// Model is the jointly-trained logistic model; in deployment each party
// keeps only its own weight block.
type Model struct {
	WA []float64 // Party A's weights
	WB []float64 // Party B's weights
	B0 float64   // intercept (held by B)
}

// PredictMargin computes the joint raw margin for row i.
func (m *Model) PredictMargin(a, b *dataset.Dataset, i int) float64 {
	s := m.B0
	cols, vals := a.Row(i)
	for k, j := range cols {
		s += m.WA[j] * vals[k]
	}
	cols, vals = b.Row(i)
	for k, j := range cols {
		s += m.WB[j] * vals[k]
	}
	return s
}

// PredictAll computes joint margins for all aligned rows.
func (m *Model) PredictAll(a, b *dataset.Dataset) []float64 {
	out := make([]float64, a.Rows())
	for i := range out {
		out[i] = m.PredictMargin(a, b, i)
	}
	return out
}

// xExp is the fixed-point exponent feature values are encoded at for the
// SMul in the gradient reduction: a term x_ij ⊗ [[d_i]] carries exponent
// d.Exp + xExp, so the reduction codec's exponent window is shifted by
// xExp to keep the re-ordered workspaces aligned.
const xExp = 6

// party is one side's private state.
type party struct {
	data  *dataset.Dataset
	w     []float64
	dec   he.Decryptor      // own key pair
	codec *fixedpoint.Codec // own encoding context
	peer  *fixedpoint.Codec // codec over the peer's public scheme
	red   *fixedpoint.Codec // reduction codec (peer scheme, shifted exps)
	xMax  float64           // max |feature value| of this party's shard
}

// maxAbsFeature scans a shard once for its largest absolute stored value,
// the bound the packing shift needs. The scan is party-local.
func maxAbsFeature(d *dataset.Dataset) float64 {
	m := 1.0
	for i := 0; i < d.Rows(); i++ {
		_, vals := d.Row(i)
		for _, v := range vals {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
	}
	return m
}

// Stats reports the cryptographic work of a training run.
type Stats struct {
	Encryptions int64
	Decryptions int64
	HAdds       int64
	Scalings    int64
}

// Train runs the two-party protocol in process: parts[0] is Party A
// (features only), parts[1] is Party B (features + labels).
func Train(parts []*dataset.Dataset, cfg Config) (*Model, *Stats, error) {
	if len(parts) != 2 {
		return nil, nil, fmt.Errorf("fedlr: need exactly two parties, got %d", len(parts))
	}
	a, b := parts[0], parts[1]
	if a.Rows() != b.Rows() {
		return nil, nil, fmt.Errorf("fedlr: row mismatch %d vs %d", a.Rows(), b.Rows())
	}
	if b.Labels == nil {
		return nil, nil, fmt.Errorf("fedlr: party B must hold labels")
	}
	if a.Labels != nil {
		return nil, nil, fmt.Errorf("fedlr: party A must not hold labels")
	}
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.LearningRate <= 0 {
		return nil, nil, fmt.Errorf("fedlr: non-positive hyper-parameter")
	}

	decA, err := newDecryptor(cfg)
	if err != nil {
		return nil, nil, err
	}
	decB, err := newDecryptor(cfg)
	if err != nil {
		return nil, nil, err
	}
	shifted := fixedpoint.WithExponents(fixedpoint.DefaultBaseExp+xExp, fixedpoint.DefaultExpSpread)
	pa := &party{
		data:  a,
		w:     make([]float64, a.Cols()),
		dec:   decA,
		codec: fixedpoint.NewCodec(decA, fixedpoint.WithSeed(cfg.Seed)),
		peer:  fixedpoint.NewCodec(decB, fixedpoint.WithSeed(cfg.Seed+1)),
	}
	pa.red = fixedpoint.NewCodec(decB, shifted, fixedpoint.WithSeed(cfg.Seed+4))
	pa.xMax = maxAbsFeature(a)
	pb := &party{
		data:  b,
		w:     make([]float64, b.Cols()),
		dec:   decB,
		codec: fixedpoint.NewCodec(decB, fixedpoint.WithSeed(cfg.Seed+2)),
		peer:  fixedpoint.NewCodec(decA, fixedpoint.WithSeed(cfg.Seed+3)),
	}
	pb.red = fixedpoint.NewCodec(decA, shifted, fixedpoint.WithSeed(cfg.Seed+5))
	pb.xMax = maxAbsFeature(b)
	if cfg.GradClip <= 0 {
		cfg.GradClip = 2
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	n := a.Rows()
	model := &Model{WA: pa.w, WB: pb.w}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := rng.Perm(n)
		for lo := 0; lo < n; lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > n {
				hi = n
			}
			batch := order[lo:hi]
			if err := trainBatch(pa, pb, model, batch, cfg, rng); err != nil {
				return nil, nil, err
			}
		}
	}

	st := &Stats{}
	for _, c := range []*fixedpoint.Codec{pa.codec, pa.peer, pa.red, pb.codec, pb.peer, pb.red} {
		st.Encryptions += c.Stats().Encryptions()
		st.Decryptions += c.Stats().Decryptions()
		st.HAdds += c.Stats().HAdds()
		st.Scalings += c.Stats().Scalings()
	}
	return model, st, nil
}

// trainBatch runs one mini-batch: A's gradient under B's key, B's
// gradient under A's key, both recovered through one-time masking.
func trainBatch(pa, pb *party, m *Model, batch []int, cfg Config, rng *rand.Rand) error {
	// Plaintext partial margins on each side.
	uA := make([]float64, len(batch))
	uB := make([]float64, len(batch))
	for k, i := range batch {
		uA[k] = partial(pa.data, pa.w, i)
		uB[k] = partial(pb.data, pb.w, i) + m.B0
	}

	// Each side's plaintext contribution is clipped to ±GradClip before
	// encryption, bounding |d_i| <= 2·GradClip — the regularization-style
	// bound the packing path relies on (and applied in all modes so
	// packed and unpacked training match).
	clip := func(v float64) float64 {
		return math.Max(-cfg.GradClip, math.Min(cfg.GradClip, v))
	}

	// --- A's gradient, under B's key --------------------------------
	// B -> A: Enc_B(0.25·u_B_i + 0.5 - y_i).
	dB := make([]fixedpoint.EncNum, len(batch))
	for k, i := range batch {
		e, err := pb.codec.EncryptValue(clip(0.25*uB[k] + 0.5 - pb.data.Labels[i]))
		if err != nil {
			return err
		}
		dB[k] = e
	}
	// A completes d_i = dB_i + 0.25·u_A_i under B's key.
	dFull := make([]fixedpoint.EncNum, len(batch))
	for k := range batch {
		e, err := pa.peer.EncryptValue(clip(0.25 * uA[k]))
		if err != nil {
			return err
		}
		dFull[k] = pa.peer.AddEnc(dB[k], e)
	}
	gradA, err := reduceGradient(pa.red, pa.data, batch, dFull, cfg.Reordered)
	if err != nil {
		return err
	}
	// Mask, have B decrypt, unmask, step.
	if err := maskedStep(pa, pb.dec, gradA, len(batch), cfg, rng); err != nil {
		return err
	}

	// --- B's gradient, under A's key --------------------------------
	// A -> B: Enc_A(0.25·u_A_i).
	dA := make([]fixedpoint.EncNum, len(batch))
	for k := range batch {
		e, err := pa.codec.EncryptValue(clip(0.25 * uA[k]))
		if err != nil {
			return err
		}
		dA[k] = e
	}
	dFullB := make([]fixedpoint.EncNum, len(batch))
	for k, i := range batch {
		e, err := pb.peer.EncryptValue(clip(0.25*uB[k] + 0.5 - pb.data.Labels[i]))
		if err != nil {
			return err
		}
		dFullB[k] = pb.peer.AddEnc(dA[k], e)
	}
	gradB, err := reduceGradient(pb.red, pb.data, batch, dFullB, cfg.Reordered)
	if err != nil {
		return err
	}
	if err := maskedStep(pb, pa.dec, gradB, len(batch), cfg, rng); err != nil {
		return err
	}

	// Intercept update stays on B in plaintext: d̄ over the batch using
	// the same linearization (B may compute it exactly from the masked
	// joint margin; the Taylor form keeps parity with the weights).
	var dSum float64
	for k, i := range batch {
		dSum += 0.25*(uA[k]+uB[k]) + 0.5 - pb.data.Labels[i]
	}
	m.B0 -= cfg.LearningRate * dSum / float64(len(batch))
	return nil
}

// partial computes x_i · w over one party's features.
func partial(d *dataset.Dataset, w []float64, i int) float64 {
	cols, vals := d.Row(i)
	s := 0.0
	for k, j := range cols {
		s += w[j] * vals[k]
	}
	return s
}

// reduceGradient computes the encrypted per-feature gradient sums
// Σ_i x_ij ⊗ [[d_i]]. With Reordered the per-feature reduction lands in
// per-exponent workspaces (plain HAdds) and merges once; otherwise every
// addition may scale (the naive path the paper's discussion contrasts).
func reduceGradient(codec *fixedpoint.Codec, d *dataset.Dataset, batch []int, enc []fixedpoint.EncNum, reordered bool) ([]fixedpoint.EncNum, error) {
	cols := d.Cols()
	out := make([]fixedpoint.EncNum, cols)
	var sums []*fixedpoint.ReorderedSum
	if reordered {
		sums = make([]*fixedpoint.ReorderedSum, cols)
	}
	for k, i := range batch {
		ci, vals := d.Row(i)
		for t, j := range ci {
			// Feature values are encoded as small signed integers at
			// exponent xExp; the SMul shifts the term's exponent by
			// xExp, matching the reduction codec's window.
			scalar := big.NewInt(int64(math.Round(vals[t] * xScale)))
			term := fixedpoint.EncNum{
				Exp: enc[k].Exp + xExp,
				Ct:  codec.Scheme().MulScalar(enc[k].Ct, scalar),
			}
			if reordered {
				if sums[j] == nil {
					sums[j] = fixedpoint.NewReorderedSum(codec)
				}
				sums[j].Add(term)
			} else {
				if out[j].Ct == nil {
					out[j] = fixedpoint.EncNum{Exp: term.Exp, Ct: codec.Scheme().EncryptZero()}
				}
				codec.AddEncInto(&out[j], term)
			}
		}
	}
	if reordered {
		for j := range out {
			if sums[j] != nil {
				out[j] = sums[j].Merge()
			}
		}
	}
	return out, nil
}

// maskedStep recovers the gradient through one-time masking and applies
// the SGD update with L2. With cfg.Packed the masked, shifted gradient
// ciphertexts of the occupied features are packed t-per-ciphertext before
// the peer decrypts them.
func maskedStep(p *party, peerDec he.Decryptor, grad []fixedpoint.EncNum, batchLen int, cfg Config, rng *rand.Rand) error {
	codec, w := p.red, p.w
	decay := func(j int) { w[j] -= cfg.LearningRate * cfg.L2 * w[j] }
	apply := func(j int, sum float64) {
		g := sum / float64(batchLen)
		w[j] -= cfg.LearningRate * (g + cfg.L2*w[j])
	}

	if !cfg.Packed {
		for j := range w {
			if grad[j].Ct == nil {
				decay(j)
				continue
			}
			mask := rng.Float64()*200 - 100
			em, err := codec.EncryptValue(mask)
			if err != nil {
				return err
			}
			masked := codec.AddEnc(grad[j], em)
			// The peer decrypts the masked sum and returns it; only the
			// masked value crosses the boundary.
			plain, err := codec.Decrypt(peerDec, masked)
			if err != nil {
				return err
			}
			apply(j, plain-mask)
		}
		return nil
	}

	// Packed path. |g_j| <= batch·2·GradClip·xMax, so shifting by that
	// bound makes every masked value non-negative and provably below
	// 2·bound + maskRange — the slot width M follows.
	bound := float64(batchLen) * 2 * cfg.GradClip * p.xMax
	maskRange := bound
	unified := codec.BaseExp() + codec.ExpSpread() - 1
	maxVal := 2*bound + maskRange
	bits := int(math.Ceil(math.Log2(maxVal*math.Pow(float64(codec.Base()), float64(unified))))) + 2
	s := codec.Scheme()
	if bits >= s.Bits() {
		return fmt.Errorf("fedlr: packed slots need %d bits but modulus has %d; lower BatchSize or GradClip", bits, s.Bits())
	}
	capacity := (s.Bits() - 1) / bits
	if capacity < 1 {
		capacity = 1
	}

	var occupied []int
	var cts []he.Ciphertext
	masks := make(map[int]float64)
	for j := range w {
		if grad[j].Ct == nil {
			decay(j)
			continue
		}
		mask := rng.Float64() * maskRange
		masks[j] = mask
		shiftNum, err := codec.EncodeAt(bound+mask, unified)
		if err != nil {
			return err
		}
		sc, err := s.Encrypt(shiftNum.Man)
		if err != nil {
			return err
		}
		g := codec.ScaleEnc(grad[j], unified)
		codec.Stats().AddHAdds(1)
		cts = append(cts, s.Add(g.Ct, sc))
		occupied = append(occupied, j)
	}
	for lo := 0; lo < len(cts); lo += capacity {
		hi := lo + capacity
		if hi > len(cts) {
			hi = len(cts)
		}
		packed, err := codec.Pack(cts[lo:hi], bits)
		if err != nil {
			return err
		}
		plain, err := peerDec.Decrypt(packed)
		if err != nil {
			return err
		}
		codec.Stats().AddDecryptions(1)
		for k, man := range fixedpoint.Unpack(plain, bits, hi-lo) {
			j := occupied[lo+k]
			v := codec.DecodeShifted(man, unified)
			apply(j, v-bound-masks[j])
		}
	}
	return nil
}

// newDecryptor builds one party's key pair.
func newDecryptor(cfg Config) (he.Decryptor, error) {
	switch cfg.Scheme {
	case "mock":
		return he.NewMock(512), nil
	case "paillier":
		return he.NewPaillier(cfg.KeyBits, 0)
	default:
		return nil, fmt.Errorf("fedlr: unknown scheme %q", cfg.Scheme)
	}
}

// Sigmoid converts a margin to a probability.
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
