package fedlr

import (
	"math"
	"testing"

	"vf2boost/internal/dataset"
	"vf2boost/internal/metrics"
)

func lrParts(t testing.TB, rows, colsA, colsB int, seed int64) (*dataset.Dataset, []*dataset.Dataset) {
	t.Helper()
	d, err := dataset.Generate(dataset.GenOptions{
		Rows: rows, Cols: colsA + colsB, Density: 1, Dense: true, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := d.VerticalSplit([]int{colsA, colsB}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d, parts
}

func TestTrainValidation(t *testing.T) {
	_, parts := lrParts(t, 60, 3, 3, 1)
	cfg := DefaultConfig()
	cfg.Scheme = "mock"
	if _, _, err := Train(parts[:1], cfg); err == nil {
		t.Error("single party accepted")
	}
	if _, _, err := Train([]*dataset.Dataset{parts[1], parts[1]}, cfg); err == nil {
		t.Error("labeled party A accepted")
	}
	if _, _, err := Train([]*dataset.Dataset{parts[0], parts[0]}, cfg); err == nil {
		t.Error("unlabeled party B accepted")
	}
	bad := cfg
	bad.Epochs = 0
	if _, _, err := Train(parts, bad); err == nil {
		t.Error("zero epochs accepted")
	}
	bad = cfg
	bad.Scheme = "nope"
	if _, _, err := Train(parts, bad); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestTrainLearnsMock(t *testing.T) {
	joined, parts := lrParts(t, 1200, 5, 5, 2)
	cfg := DefaultConfig()
	cfg.Scheme = "mock"
	cfg.Epochs = 6
	m, st, err := Train(parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	margins := m.PredictAll(parts[0], parts[1])
	auc, err := metrics.AUC(margins, joined.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.8 {
		t.Errorf("federated LR AUC = %g, want >= 0.8", auc)
	}
	if st.Encryptions == 0 || st.Decryptions == 0 || st.HAdds == 0 {
		t.Errorf("stats not recorded: %+v", st)
	}
}

func TestReorderedMatchesNaive(t *testing.T) {
	joined, parts := lrParts(t, 400, 4, 4, 3)
	_ = joined
	cfgN := DefaultConfig()
	cfgN.Scheme = "mock"
	cfgN.Epochs = 2
	cfgN.Reordered = false
	cfgR := cfgN
	cfgR.Reordered = true

	mN, stN, err := Train(parts, cfgN)
	if err != nil {
		t.Fatal(err)
	}
	mR, stR, err := Train(parts, cfgR)
	if err != nil {
		t.Fatal(err)
	}
	for j := range mN.WA {
		if math.Abs(mN.WA[j]-mR.WA[j]) > 1e-9 {
			t.Fatalf("weight A[%d] diverged: %g vs %g", j, mN.WA[j], mR.WA[j])
		}
	}
	for j := range mN.WB {
		if math.Abs(mN.WB[j]-mR.WB[j]) > 1e-9 {
			t.Fatalf("weight B[%d] diverged", j)
		}
	}
	// The whole point of the re-ordered reduction: far fewer scalings.
	if stR.Scalings >= stN.Scalings {
		t.Errorf("re-ordered used %d scalings, naive %d; no reduction", stR.Scalings, stN.Scalings)
	}
}

func TestTrainLearnsPaillier(t *testing.T) {
	if testing.Short() {
		t.Skip("paillier LR is slow")
	}
	joined, parts := lrParts(t, 200, 3, 3, 4)
	cfg := DefaultConfig()
	cfg.KeyBits = 256
	cfg.Epochs = 2
	cfg.BatchSize = 64
	m, _, err := Train(parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	margins := m.PredictAll(parts[0], parts[1])
	auc, err := metrics.AUC(margins, joined.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.7 {
		t.Errorf("paillier LR AUC = %g", auc)
	}
}

func TestSigmoid(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Error("Sigmoid(0) != 0.5")
	}
}
