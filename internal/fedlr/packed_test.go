package fedlr

import (
	"math"
	"testing"

	"vf2boost/internal/metrics"
)

// TestPackedMatchesUnpacked: packed and unpacked masked-gradient exchange
// must train (near-)identical models — packing only changes the wire and
// decryption layout, within fixed-point rounding.
func TestPackedMatchesUnpacked(t *testing.T) {
	joined, parts := lrParts(t, 500, 4, 4, 2)
	base := DefaultConfig()
	base.Scheme = "mock"
	base.Epochs = 4
	base.Packed = false
	packed := base
	packed.Packed = true

	mU, stU, err := Train(parts, base)
	if err != nil {
		t.Fatal(err)
	}
	mP, stP, err := Train(parts, packed)
	if err != nil {
		t.Fatal(err)
	}
	for j := range mU.WA {
		if math.Abs(mU.WA[j]-mP.WA[j]) > 1e-6 {
			t.Fatalf("WA[%d]: unpacked %g vs packed %g", j, mU.WA[j], mP.WA[j])
		}
	}
	for j := range mU.WB {
		if math.Abs(mU.WB[j]-mP.WB[j]) > 1e-6 {
			t.Fatalf("WB[%d] diverged", j)
		}
	}
	// The point of packing: far fewer decryptions.
	if stP.Decryptions >= stU.Decryptions {
		t.Errorf("packed used %d decryptions, unpacked %d; no reduction",
			stP.Decryptions, stU.Decryptions)
	}
	// And the model still learns.
	auc, err := metrics.AUC(mP.PredictAll(parts[0], parts[1]), joined.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.7 {
		t.Errorf("packed LR AUC = %g", auc)
	}
}

// TestPackedRejectsOversizedBatch: the slot-width validation must fail
// loudly when the bound cannot fit the plaintext space.
func TestPackedRejectsOversizedBatch(t *testing.T) {
	_, parts := lrParts(t, 300, 3, 3, 8)
	cfg := DefaultConfig()
	cfg.Scheme = "mock"
	cfg.Epochs = 1
	cfg.Packed = true
	cfg.BatchSize = 300
	cfg.GradClip = 1e130 // absurd bound forces slot overflow at S=512
	if _, _, err := Train(parts, cfg); err == nil {
		t.Error("oversized packed slots accepted")
	}
}

// TestPackedPaillier runs the packed exchange under real Paillier keys.
func TestPackedPaillier(t *testing.T) {
	if testing.Short() {
		t.Skip("paillier LR is slow")
	}
	joined, parts := lrParts(t, 150, 3, 3, 9)
	cfg := DefaultConfig()
	cfg.KeyBits = 256
	cfg.Epochs = 1
	cfg.BatchSize = 50
	cfg.Packed = true
	m, _, err := Train(parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	auc, err := metrics.AUC(m.PredictAll(parts[0], parts[1]), joined.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.6 {
		t.Errorf("packed paillier LR AUC = %g", auc)
	}
}
