// Package checkpoint is an atomic, CRC-guarded on-disk snapshot store.
// Training writes one snapshot per completed boosting round; resume loads
// the newest snapshot that passes integrity checks, silently skipping
// truncated or corrupted files (a crash mid-write must never poison
// recovery). Snapshots are JSON bodies framed as
//
//	8-byte magic "VF2CKPT1" | uint32 CRC-32 (IEEE, of the body) |
//	uint64 body length | body
//
// and each Save goes through a temp file + rename, so a reader never
// observes a partially-written snapshot under POSIX rename atomicity.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"vf2boost/internal/fault/fsfault"
)

const (
	magic      = "VF2CKPT1"
	headerSize = len(magic) + 4 + 8
	prefix     = "ckpt-"
	suffix     = ".vfck"
	tmpPrefix  = ".tmp-"
)

// Store manages the snapshots of one party in one directory. Snapshot
// sequence numbers are positive and monotone (training uses the number of
// completed trees); Save overwrites an existing sequence atomically.
type Store struct {
	dir  string
	fs   fsfault.FS
	keep int // retain at most this many newest snapshots; 0 = all
}

// Open creates the directory if needed and returns a store over it,
// sweeping any temp debris a crashed writer left behind.
func Open(dir string) (*Store, error) {
	return OpenFS(dir, nil)
}

// OpenFS is Open with an explicit filesystem (nil means the real one);
// the storage-chaos harness installs a fault injector here.
func OpenFS(dir string, fsys fsfault.FS) (*Store, error) {
	if fsys == nil {
		fsys = fsfault.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir, fs: fsys}
	s.sweepTemp()
	return s, nil
}

// sweepTemp removes orphaned temp files — debris of writers that died
// between CreateTemp and rename. They never carried a committed name, so
// deleting them cannot lose a snapshot.
func (s *Store) sweepTemp() {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			s.fs.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// SetKeep bounds retention to the n newest snapshots (0 keeps all).
// Resume may need to step back past the newest snapshot (the active party
// rewinds to the slowest passive party's round), so keep a few.
func (s *Store) SetKeep(n int) { s.keep = n }

func (s *Store) path(seq int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%08d%s", prefix, seq, suffix))
}

// Save atomically writes snapshot seq with v's JSON encoding as the body.
func (s *Store) Save(seq int, v any) error {
	if seq <= 0 {
		return fmt.Errorf("checkpoint: sequence %d must be positive", seq)
	}
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding snapshot %d: %w", seq, err)
	}
	buf := make([]byte, 0, headerSize+len(body))
	buf = append(buf, magic...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(body)))
	buf = append(buf, body...)

	tmp, err := s.fs.CreateTemp(s.dir, tmpPrefix+prefix+"*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		s.fs.Remove(tmpName)
		return fmt.Errorf("checkpoint: writing snapshot %d: %w", seq, err)
	}
	if err := s.fs.Rename(tmpName, s.path(seq)); err != nil {
		s.fs.Remove(tmpName)
		return fmt.Errorf("checkpoint: publishing snapshot %d: %w", seq, err)
	}
	s.prune()
	return nil
}

// prune removes the oldest snapshots beyond the retention bound.
func (s *Store) prune() {
	if s.keep <= 0 {
		return
	}
	seqs := s.Seqs()
	for len(seqs) > s.keep {
		s.fs.Remove(s.path(seqs[0]))
		seqs = seqs[1:]
	}
}

// Seqs lists the stored snapshot sequence numbers in ascending order
// (whatever files exist — integrity is checked at load time).
func (s *Store) Seqs() []int {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var seqs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		seq, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix))
		if err != nil || seq <= 0 {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	return seqs
}

// Load reads snapshot seq into v, verifying magic, length, and CRC.
func (s *Store) Load(seq int, v any) error {
	raw, err := s.fs.ReadFile(s.path(seq))
	if err != nil {
		return fmt.Errorf("checkpoint: reading snapshot %d: %w", seq, err)
	}
	if len(raw) < headerSize || string(raw[:len(magic)]) != magic {
		return fmt.Errorf("checkpoint: snapshot %d has a bad header", seq)
	}
	sum := binary.BigEndian.Uint32(raw[len(magic):])
	n := binary.BigEndian.Uint64(raw[len(magic)+4:])
	body := raw[headerSize:]
	if n != uint64(len(body)) {
		return fmt.Errorf("checkpoint: snapshot %d declares %d body bytes, carries %d", seq, n, len(body))
	}
	if crc32.ChecksumIEEE(body) != sum {
		return fmt.Errorf("checkpoint: snapshot %d failed its CRC check", seq)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("checkpoint: decoding snapshot %d: %w", seq, err)
	}
	return nil
}

// LoadLatest loads the newest snapshot that passes integrity checks into
// v and returns its sequence number. It returns (0, nil) when no valid
// snapshot exists — corrupted files are skipped, not fatal. Orphaned
// temp files encountered on the way are cleaned up, so a crash between
// temp write and rename leaves no debris past the next recovery.
func (s *Store) LoadLatest(v any) (int, error) {
	s.sweepTemp()
	seqs := s.Seqs()
	for i := len(seqs) - 1; i >= 0; i-- {
		if err := s.Load(seqs[i], v); err == nil {
			return seqs[i], nil
		}
	}
	return 0, nil
}
