package checkpoint

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

type snap struct {
	Round  int       `json:"round"`
	Values []float64 `json:"values"`
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := snap{Round: 3, Values: []float64{1.5, -2.25, 0}}
	if err := st.Save(3, want); err != nil {
		t.Fatal(err)
	}
	var got snap
	if err := st.Load(3, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Load = %+v, want %+v", got, want)
	}
	if seq, err := st.LoadLatest(&got); err != nil || seq != 3 {
		t.Fatalf("LoadLatest = %d, %v", seq, err)
	}
}

func TestLoadLatestSkipsCorruption(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 3; seq++ {
		if err := st.Save(seq, snap{Round: seq}); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt snapshot 3 (flip a body byte) and truncate snapshot 2 as if
	// the process died mid-write.
	p3 := st.path(3)
	raw, err := os.ReadFile(p3)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(p3, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	p2 := st.path(2)
	if err := os.Truncate(p2, 5); err != nil {
		t.Fatal(err)
	}

	var got snap
	seq, err := st.LoadLatest(&got)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || got.Round != 1 {
		t.Fatalf("LoadLatest = %d (round %d), want the intact snapshot 1", seq, got.Round)
	}
	if err := st.Load(3, &got); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Errorf("Load(3) on corrupted file = %v, want CRC failure", err)
	}
}

func TestLoadLatestEmpty(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var got snap
	if seq, err := st.LoadLatest(&got); err != nil || seq != 0 {
		t.Fatalf("LoadLatest on empty store = %d, %v, want 0, nil", seq, err)
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(1, snap{Round: 1}); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(1, snap{Round: 42}); err != nil {
		t.Fatal(err)
	}
	var got snap
	if err := st.Load(1, &got); err != nil || got.Round != 42 {
		t.Fatalf("Load after overwrite = %+v, %v", got, err)
	}
	// No temp-file litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestPrune(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.SetKeep(2)
	for seq := 1; seq <= 5; seq++ {
		if err := st.Save(seq, snap{Round: seq}); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Seqs(); !reflect.DeepEqual(got, []int{4, 5}) {
		t.Fatalf("Seqs after prune = %v, want [4 5]", got)
	}
}

func TestSeqsIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(7, snap{}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"notes.txt", "ckpt-abc.vfck", prefix + "00000000" + suffix} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Seqs(); !reflect.DeepEqual(got, []int{7}) {
		t.Fatalf("Seqs = %v, want [7]", got)
	}
}

func TestSaveRejectsBadSeq(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(0, snap{}); err == nil {
		t.Error("Save(0) accepted a non-positive sequence")
	}
}

// A crash at rename time — the classic torn write — leaves either a
// truncated committed name or stale temp debris. LoadLatest must skip the
// torn snapshot to the newest valid one, and opening or recovering the
// store must clean the orphaned temp files.
func TestTornWriteAtRenameRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 2; seq++ {
		if err := st.Save(seq, snap{Round: seq}); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot 3 "crashed" mid-rename: the committed name holds a prefix
	// of the frame (data blocks never synced).
	raw, err := os.ReadFile(st.path(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.path(3), raw[:headerSize+3], 0o644); err != nil {
		t.Fatal(err)
	}
	// Snapshot 4 "crashed" before rename: only temp debris exists.
	debris := []string{
		filepath.Join(dir, tmpPrefix+prefix+"123456"),
		filepath.Join(dir, tmpPrefix+prefix+"999999"),
	}
	for _, p := range debris {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var got snap
	seq, err := st.LoadLatest(&got)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 || got.Round != 2 {
		t.Fatalf("LoadLatest = %d (round %d), want the newest valid snapshot 2", seq, got.Round)
	}
	for _, p := range debris {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphaned temp file %s survived recovery", filepath.Base(p))
		}
	}
}

// Reopening a directory with temp debris sweeps it immediately, before
// any load.
func TestOpenSweepsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	debris := filepath.Join(dir, tmpPrefix+prefix+"42")
	if err := os.WriteFile(debris, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Error("Open left orphaned temp file in place")
	}
}
