// Package psi implements a Diffie–Hellman-style private set intersection,
// the preprocessing step the paper uses to align instance IDs between
// parties before vertical federated training ("we preprocess the datasets
// via the private set intersection technique to align the instances",
// Section 6.1).
//
// The protocol is the classic DDH PSI: with a group of prime order q and a
// hash H into the group,
//
//  1. each party holds a random secret exponent;
//  2. Party A sends {H(x)^a} for its IDs, in its own order;
//  3. Party B returns {H(x)^{ab}} in the same order, along with {H(y)^b}
//     for its IDs;
//  4. Party A computes {H(y)^{ba}} and matches it against the returned
//     set, learning which of its positions intersect — and nothing else.
//
// Under the DDH assumption neither party learns IDs outside the
// intersection. The group is the 1536-bit MODP safe-prime group of RFC
// 3526; H(id) squares a SHA-256-derived element to land in the prime-order
// subgroup.
package psi

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"math/big"
)

// rfc3526Group5 is the 1536-bit MODP prime of RFC 3526, a safe prime
// p = 2q+1.
const rfc3526Group5Hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D" +
	"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F" +
	"83655D23DCA3AD961C62F356208552BB9ED529077096966D" +
	"670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"

// Group is a prime-order subgroup of Z_p* with p = 2q+1.
type Group struct {
	P *big.Int // safe prime
	Q *big.Int // (p-1)/2, the subgroup order
}

// DefaultGroup returns the RFC 3526 1536-bit group.
func DefaultGroup() *Group {
	p, ok := new(big.Int).SetString(rfc3526Group5Hex, 16)
	if !ok {
		panic("psi: bad embedded prime")
	}
	q := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 1)
	return &Group{P: p, Q: q}
}

// hashToGroup maps an ID to the quadratic-residue subgroup by squaring a
// hash-derived element.
func (g *Group) hashToGroup(id string) *big.Int {
	h := sha256.Sum256([]byte(id))
	// Extend to the modulus width with counter-mode hashing.
	buf := make([]byte, 0, (g.P.BitLen()+7)/8)
	ctr := byte(0)
	for len(buf) < cap(buf) {
		block := sha256.Sum256(append(h[:], ctr))
		buf = append(buf, block[:]...)
		ctr++
	}
	e := new(big.Int).SetBytes(buf[:cap(buf)])
	e.Mod(e, g.P)
	if e.Sign() == 0 {
		e.SetInt64(4) // 4 = 2² is a QR
		return e
	}
	return e.Mul(e, e).Mod(e, g.P)
}

// Party holds one side's ephemeral PSI secret.
type Party struct {
	group  *Group
	secret *big.Int
}

// NewParty draws a fresh secret exponent in [1, q).
func NewParty(g *Group) (*Party, error) {
	s, err := rand.Int(rand.Reader, new(big.Int).Sub(g.Q, big.NewInt(1)))
	if err != nil {
		return nil, fmt.Errorf("psi: drawing secret: %w", err)
	}
	s.Add(s, big.NewInt(1))
	return &Party{group: g, secret: s}, nil
}

// Blind computes H(id)^secret for each ID, preserving order.
func (p *Party) Blind(ids []string) []*big.Int {
	out := make([]*big.Int, len(ids))
	for i, id := range ids {
		out[i] = new(big.Int).Exp(p.group.hashToGroup(id), p.secret, p.group.P)
	}
	return out
}

// Exponentiate raises received blinded elements to this party's secret,
// preserving order.
func (p *Party) Exponentiate(elems []*big.Int) []*big.Int {
	out := make([]*big.Int, len(elems))
	for i, e := range elems {
		out[i] = new(big.Int).Exp(e, p.secret, p.group.P)
	}
	return out
}

// Intersect runs the full two-party protocol in process and returns, for
// each party, the positions of its IDs that lie in the intersection —
// exactly the alignment information vertical FL needs, in matching order.
func Intersect(g *Group, idsA, idsB []string) (posA, posB []int, err error) {
	a, err := NewParty(g)
	if err != nil {
		return nil, nil, err
	}
	b, err := NewParty(g)
	if err != nil {
		return nil, nil, err
	}

	// A -> B: {H(x)^a}; B -> A: {H(x)^ab} (same order) and {H(y)^b}.
	blindA := a.Blind(idsA)
	doubleA := b.Exponentiate(blindA)
	blindB := b.Blind(idsB)
	// A computes {H(y)^ba} and matches.
	doubleB := a.Exponentiate(blindB)

	index := make(map[string]int, len(doubleB))
	for j, e := range doubleB {
		index[string(e.Bytes())] = j
	}
	for i, e := range doubleA {
		if j, ok := index[string(e.Bytes())]; ok {
			posA = append(posA, i)
			posB = append(posB, j)
		}
	}
	return posA, posB, nil
}

// Align applies Intersect to two ID lists and returns the common IDs in
// Party A's order (the order both parties will use for row alignment).
func Align(idsA, idsB []string) (common []string, posA, posB []int, err error) {
	g := DefaultGroup()
	posA, posB, err = Intersect(g, idsA, idsB)
	if err != nil {
		return nil, nil, nil, err
	}
	common = make([]string, len(posA))
	for k, i := range posA {
		common[k] = idsA[i]
	}
	return common, posA, posB, nil
}
