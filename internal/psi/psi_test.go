package psi

import (
	"fmt"
	"testing"
)

func TestDefaultGroupIsSafePrime(t *testing.T) {
	g := DefaultGroup()
	if !g.P.ProbablyPrime(20) {
		t.Fatal("P not prime")
	}
	if !g.Q.ProbablyPrime(20) {
		t.Fatal("Q not prime")
	}
	if g.P.BitLen() != 1536 {
		t.Errorf("P has %d bits, want 1536", g.P.BitLen())
	}
}

func TestHashToGroupDeterministicAndInSubgroup(t *testing.T) {
	g := DefaultGroup()
	h1 := g.hashToGroup("user-42")
	h2 := g.hashToGroup("user-42")
	if h1.Cmp(h2) != 0 {
		t.Fatal("hash not deterministic")
	}
	if h1.Cmp(g.hashToGroup("user-43")) == 0 {
		t.Fatal("distinct ids collided")
	}
	// Element of the order-q subgroup: h^q == 1 mod p.
	one := h1.Exp(h1, g.Q, g.P)
	if one.Int64() != 1 {
		t.Error("hash output outside the prime-order subgroup")
	}
}

func TestIntersectBasic(t *testing.T) {
	idsA := []string{"u1", "u2", "u3", "u4", "u5"}
	idsB := []string{"u9", "u3", "u5", "u0", "u1"}
	common, posA, posB, err := Align(idsA, idsB)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"u1": true, "u3": true, "u5": true}
	if len(common) != 3 {
		t.Fatalf("intersection = %v", common)
	}
	for k, id := range common {
		if !want[id] {
			t.Errorf("unexpected id %q", id)
		}
		if idsA[posA[k]] != id || idsB[posB[k]] != id {
			t.Errorf("position mapping broken for %q", id)
		}
	}
}

func TestIntersectEmpty(t *testing.T) {
	common, posA, posB, err := Align([]string{"a", "b"}, []string{"c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	if len(common) != 0 || len(posA) != 0 || len(posB) != 0 {
		t.Errorf("disjoint sets intersected: %v", common)
	}
	common, _, _, err = Align(nil, []string{"c"})
	if err != nil || len(common) != 0 {
		t.Errorf("nil set: %v %v", common, err)
	}
}

func TestIntersectLarger(t *testing.T) {
	var idsA, idsB []string
	for i := 0; i < 200; i++ {
		idsA = append(idsA, fmt.Sprintf("id-%04d", i))
	}
	for i := 100; i < 300; i++ {
		idsB = append(idsB, fmt.Sprintf("id-%04d", i))
	}
	common, posA, posB, err := Align(idsA, idsB)
	if err != nil {
		t.Fatal(err)
	}
	if len(common) != 100 {
		t.Fatalf("intersection size %d, want 100", len(common))
	}
	for k := range common {
		if idsA[posA[k]] != idsB[posB[k]] {
			t.Fatal("alignment broken")
		}
	}
}

func TestBlindHidesIDs(t *testing.T) {
	// Two parties blinding the same ID produce different elements
	// (secrets differ), so blinded sets leak nothing directly comparable.
	g := DefaultGroup()
	a, err := NewParty(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewParty(g)
	if err != nil {
		t.Fatal(err)
	}
	ba := a.Blind([]string{"alice"})
	bb := b.Blind([]string{"alice"})
	if ba[0].Cmp(bb[0]) == 0 {
		t.Error("two parties' blinds of the same ID are equal; secrets not applied")
	}
	// But commutativity must hold: (H^a)^b == (H^b)^a.
	ab := b.Exponentiate(ba)
	baB := a.Exponentiate(bb)
	if ab[0].Cmp(baB[0]) != 0 {
		t.Error("exponentiation does not commute")
	}
}
