package mq

import (
	"testing"
	"time"
)

func TestConsumerCloseWakesReceive(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	c, err := b.Consumer("t", "")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Receive()
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("Receive after consumer Close = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("consumer Close did not wake Receive")
	}
	// Other consumers on the same topic stay usable.
	c2, _ := b.Consumer("t", "")
	p, _ := b.Producer("t", "")
	p.Send([]byte("x"))
	if got, err := c2.ReceiveTimeout(time.Second); err != nil || string(got) != "x" {
		t.Errorf("sibling consumer broken after Close: %q %v", got, err)
	}
}

func TestConsumerCloseDuringTimeout(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	c, _ := b.Consumer("t", "")
	go func() {
		time.Sleep(10 * time.Millisecond)
		c.Close()
	}()
	if _, err := c.ReceiveTimeout(5 * time.Second); err != ErrClosed {
		t.Errorf("ReceiveTimeout after Close = %v, want ErrClosed", err)
	}
}

func TestBrokerCloseWakesBlockedReceive(t *testing.T) {
	b := NewBroker()
	c, err := b.Consumer("t", "")
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := c.Receive()
			errs <- err
		}()
	}
	time.Sleep(5 * time.Millisecond)
	b.Close()
	for i := 0; i < 4; i++ {
		select {
		case err := <-errs:
			if err != ErrClosed {
				t.Errorf("Receive after broker Close = %v, want ErrClosed", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("broker Close did not wake a blocked Receive")
		}
	}
}

func TestReceiveTimeoutWakesOnMessage(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	p, _ := b.Producer("t", "")
	c, _ := b.Consumer("t", "")
	go func() {
		time.Sleep(10 * time.Millisecond)
		p.Send([]byte("late"))
	}()
	start := time.Now()
	got, err := c.ReceiveTimeout(10 * time.Second)
	if err != nil || string(got) != "late" {
		t.Fatalf("ReceiveTimeout = %q, %v", got, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("blocked wait took %v; the cond wait is not being woken", elapsed)
	}
}

func TestReceiveTimeoutExpiryLeavesConsumerUsable(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	p, _ := b.Producer("t", "")
	c, _ := b.Consumer("t", "")
	// A burst of expirations must not poison later receives (the expiry
	// flag is per-call) or leak armed timers.
	for i := 0; i < 50; i++ {
		if _, err := c.ReceiveTimeout(time.Millisecond); err == nil {
			t.Fatal("ReceiveTimeout on an empty topic returned no error")
		}
	}
	p.Send([]byte("x"))
	if got, err := c.ReceiveTimeout(time.Second); err != nil || string(got) != "x" {
		t.Fatalf("receive after expirations = %q, %v", got, err)
	}
}

func TestSendAfterTopicDrainedStillWorks(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	p, _ := b.Producer("t", "")
	c, _ := b.Consumer("t", "")
	for round := 0; round < 3; round++ {
		if err := p.Send([]byte{byte(round)}); err != nil {
			t.Fatal(err)
		}
		got, err := c.Receive()
		if err != nil || got[0] != byte(round) {
			t.Fatalf("round %d: %v %v", round, got, err)
		}
	}
}

func TestShaperBandwidthAndLatencyCompose(t *testing.T) {
	// 1 Mbps + 30ms latency: 12500 bytes ~ 100ms tx + 30ms = ~130ms.
	s := NewShaper(1, 30*time.Millisecond)
	start := time.Now()
	s.Transmit(12500)
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("composed delay only %v", elapsed)
	}
}

func TestGatewayRejectsGarbageHandshake(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	g := NewGateway(b)
	addr, err := g.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := DialProducer(addr, "", ""); err != nil {
		// empty topic is fine for the broker; the dial itself must work
		t.Logf("dial with empty topic: %v", err)
	}
}
