package mq

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestProduceConsumeFIFO(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	p, err := b.Producer("t", "")
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.Consumer("t", "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := p.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		got, err := c.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("message %d out of order: %v", i, got)
		}
	}
	if b.MessagesSent() != 10 {
		t.Errorf("MessagesSent = %d", b.MessagesSent())
	}
	if b.BytesSent() != 10 {
		t.Errorf("BytesSent = %d", b.BytesSent())
	}
}

func TestEffectivelyOnceDedup(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	p, _ := b.Producer("t", "")
	c, _ := b.Consumer("t", "")
	// A retry loop re-sends the same IDs; duplicates must be dropped.
	for attempt := 0; attempt < 3; attempt++ {
		for id := uint64(1); id <= 5; id++ {
			if err := p.SendWithID(id, []byte(fmt.Sprintf("m%d", id))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if b.MessagesSent() != 5 {
		t.Fatalf("delivered %d messages, want 5", b.MessagesSent())
	}
	if b.DuplicatesSuppressed() != 10 {
		t.Errorf("suppressed %d duplicates, want 10", b.DuplicatesSuppressed())
	}
	for id := 1; id <= 5; id++ {
		got, err := c.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != fmt.Sprintf("m%d", id) {
			t.Fatalf("got %q", got)
		}
	}
}

func TestIndependentProducersDedupSeparately(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	p1, _ := b.Producer("t", "")
	p2, _ := b.Producer("t", "")
	if err := p1.SendWithID(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := p2.SendWithID(1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if b.MessagesSent() != 2 {
		t.Fatalf("two producers with same ID must both deliver, got %d", b.MessagesSent())
	}
}

func TestAuth(t *testing.T) {
	secret := []byte("shared-secret")
	b := NewBroker(WithAuth(secret))
	defer b.Close()
	if _, err := b.Producer("t", "wrong"); err != ErrAuth {
		t.Errorf("bad token accepted: %v", err)
	}
	if _, err := b.Consumer("t", ""); err != ErrAuth {
		t.Errorf("empty token accepted: %v", err)
	}
	tok := Token(secret, "t")
	if _, err := b.Producer("t", tok); err != nil {
		t.Errorf("valid token rejected: %v", err)
	}
	// Tokens are topic-scoped.
	if _, err := b.Producer("other", tok); err != ErrAuth {
		t.Errorf("cross-topic token accepted: %v", err)
	}
	if !VerifyToken(secret, "t", tok) || VerifyToken(secret, "t", "nope") {
		t.Error("VerifyToken broken")
	}
}

func TestCloseWakesConsumers(t *testing.T) {
	b := NewBroker()
	c, _ := b.Consumer("t", "")
	done := make(chan error, 1)
	go func() {
		_, err := c.Receive()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("Receive after close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("consumer not woken by Close")
	}
	p, err := b.Producer("t", "")
	if err != ErrClosed {
		t.Errorf("Producer on closed broker: %v", err)
	}
	_ = p
}

func TestReceiveTimeout(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	c, _ := b.Consumer("t", "")
	start := time.Now()
	if _, err := c.ReceiveTimeout(30 * time.Millisecond); err == nil {
		t.Error("timeout did not fire")
	}
	if time.Since(start) > time.Second {
		t.Error("timeout waited far too long")
	}
	p, _ := b.Producer("t", "")
	p.Send([]byte("x"))
	got, err := c.ReceiveTimeout(time.Second)
	if err != nil || string(got) != "x" {
		t.Errorf("ReceiveTimeout = %q, %v", got, err)
	}
}

func TestConcurrentProducersAndConsumer(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	const producers = 8
	const per = 200
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := b.Producer("t", "")
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < per; i++ {
				if err := p.Send([]byte{1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	c, _ := b.Consumer("t", "")
	received := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for received < producers*per {
			if _, err := c.Receive(); err != nil {
				t.Error(err)
				return
			}
			received++
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("received only %d of %d", received, producers*per)
	}
}

func TestShaperAccountsAndDelays(t *testing.T) {
	// 1 Mbps -> 125000 B/s; 12500 bytes should take ~100ms.
	s := NewShaper(1, 0)
	start := time.Now()
	s.Transmit(12500)
	elapsed := time.Since(start)
	if elapsed < 60*time.Millisecond {
		t.Errorf("transmission of 12500B at 1Mbps took only %v", elapsed)
	}
	if s.Bytes() != 12500 {
		t.Errorf("Bytes = %d", s.Bytes())
	}
	if s.BlockedTime() <= 0 {
		t.Error("BlockedTime not accounted")
	}
	s.Reset()
	if s.Bytes() != 0 || s.BlockedTime() != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestShaperSerializesLink(t *testing.T) {
	s := NewShaper(1, 0) // 125000 B/s
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Transmit(6250) // 50ms each
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("4 concurrent 50ms transmissions finished in %v; link not serialized", elapsed)
	}
}

func TestShaperUnlimited(t *testing.T) {
	s := NewShaper(0, 0)
	start := time.Now()
	s.Transmit(1 << 20)
	if time.Since(start) > 10*time.Millisecond {
		t.Error("unlimited shaper delayed transmission")
	}
}

func TestShaperLatencyOnly(t *testing.T) {
	s := NewShaper(0, 20*time.Millisecond)
	start := time.Now()
	s.Transmit(10)
	if time.Since(start) < 15*time.Millisecond {
		t.Error("latency not applied")
	}
}

func TestBrokerWithShaperCountsBytes(t *testing.T) {
	sh := NewShaper(0, 0)
	b := NewBroker(WithShaper(sh))
	defer b.Close()
	p, _ := b.Producer("t", "")
	c, _ := b.Consumer("t", "")
	payload := bytes.Repeat([]byte("x"), 1000)
	p.Send(payload)
	c.Receive()
	if sh.Bytes() != 1000 {
		t.Errorf("shaper saw %d bytes", sh.Bytes())
	}
}

func TestTCPGatewayRoundTrip(t *testing.T) {
	secret := []byte("s3cr3t")
	b := NewBroker(WithAuth(secret))
	defer b.Close()
	g := NewGateway(b)
	addr, err := g.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	tok := Token(secret, "a2b")
	prod, err := DialProducer(addr, "a2b", tok)
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	cons, err := DialConsumer(addr, "a2b", tok)
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()

	for i := 0; i < 20; i++ {
		msg := []byte(fmt.Sprintf("payload-%d", i))
		if err := prod.Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		got, err := cons.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("payload-%d", i); string(got) != want {
			t.Fatalf("got %q want %q", got, want)
		}
	}
}

func TestTCPGatewayRejectsBadToken(t *testing.T) {
	b := NewBroker(WithAuth([]byte("k")))
	defer b.Close()
	g := NewGateway(b)
	addr, err := g.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := DialProducer(addr, "t", "bad"); err == nil {
		t.Error("bad token accepted over TCP")
	}
	if _, err := DialConsumer(addr, "t", "bad"); err == nil {
		t.Error("bad consumer token accepted over TCP")
	}
}

func TestTCPLargePayload(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	g := NewGateway(b)
	addr, _ := g.Listen("127.0.0.1:0")
	defer g.Close()
	prod, err := DialProducer(addr, "big", "")
	if err != nil {
		t.Fatal(err)
	}
	cons, err := DialConsumer(addr, "big", "")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 1<<20)
	if err := prod.Send(payload); err != nil {
		t.Fatal(err)
	}
	got, err := cons.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("large payload corrupted")
	}
}

// TestTopicDepth: the queue-depth gauge must track publishes and consumes,
// the backpressure signal the serving layer surfaces in /metricsz.
func TestTopicDepth(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if d := b.TopicDepth("nope"); d != 0 {
		t.Fatalf("unknown topic depth = %d", d)
	}
	p, err := b.Producer("t", "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := p.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if d := b.TopicDepth("t"); d != 3 {
		t.Fatalf("depth after 3 sends = %d", d)
	}
	c, err := b.Consumer("t", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Receive(); err != nil {
		t.Fatal(err)
	}
	if d := b.TopicDepth("t"); d != 2 {
		t.Fatalf("depth after 1 receive = %d", d)
	}
	depths := b.TopicDepths()
	if depths["t"] != 2 || len(depths) != 1 {
		t.Fatalf("TopicDepths = %v", depths)
	}
	// Duplicate suppression must not inflate the gauge.
	if err := p.SendWithID(1, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if d := b.TopicDepth("t"); d != 2 {
		t.Fatalf("depth after suppressed duplicate = %d", d)
	}
}
