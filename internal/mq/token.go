package mq

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
)

// Token derives the per-topic authentication token from a shared secret,
// mirroring Pulsar's token authentication: both parties hold the secret
// agreed out of band and present HMAC-SHA256(secret, topic).
func Token(secret []byte, topic string) string {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(topic))
	return hex.EncodeToString(mac.Sum(nil))
}

// VerifyToken checks a presented token in constant time.
func VerifyToken(secret []byte, topic, token string) bool {
	want := Token(secret, topic)
	return hmac.Equal([]byte(want), []byte(token))
}
