// Package mq is the cross-party communication substrate of the
// reproduction, standing in for the Apache Pulsar deployment of the paper
// (Section 3.3): topic-based message queues with effectively-once delivery
// (duplicate suppression by message ID), HMAC token authentication, and a
// WAN shaper that models the constrained public link between the two data
// centers (300 Mbps in the paper's testbed). A TCP gateway (tcp.go) allows
// parties in separate processes to attach to the same broker.
package mq

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by operations on a closed broker or topic.
var ErrClosed = errors.New("mq: closed")

// ErrAuth is returned when a producer or consumer presents a bad token.
var ErrAuth = errors.New("mq: authentication failed")

// Message is one queued payload.
type Message struct {
	// ID is the producer-scoped sequence number used for duplicate
	// suppression.
	ID uint64
	// Producer identifies the sending producer within its topic.
	Producer uint64
	// Payload is the opaque body.
	Payload []byte
}

// Broker routes messages between producers and consumers by topic name.
// Every topic is a FIFO queue with a single consumer group (the federated
// protocol pairs each worker with exactly one opposite worker, Section
// 3.1, so fan-out is not needed).
type Broker struct {
	mu     sync.Mutex
	topics map[string]*topic
	secret []byte
	shaper *Shaper
	closed bool

	producerSeq uint64

	bytesSent atomic.Int64
	msgsSent  atomic.Int64
	dupsSeen  atomic.Int64
}

type topic struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	seen   map[uint64]uint64 // producer -> highest contiguous ID delivered
	closed bool
}

// Option configures a broker.
type Option func(*Broker)

// WithAuth requires producers and consumers to present Token(secret,
// topic) when attaching.
func WithAuth(secret []byte) Option { return func(b *Broker) { b.secret = secret } }

// WithShaper routes all deliveries through the WAN shaper.
func WithShaper(s *Shaper) Option { return func(b *Broker) { b.shaper = s } }

// NewBroker creates an empty broker.
func NewBroker(opts ...Option) *Broker {
	b := &Broker{topics: make(map[string]*topic)}
	for _, o := range opts {
		o(b)
	}
	return b
}

func (b *Broker) getTopic(name string) (*topic, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	t, ok := b.topics[name]
	if !ok {
		t = &topic{seen: make(map[uint64]uint64)}
		t.cond = sync.NewCond(&t.mu)
		b.topics[name] = t
	}
	return t, nil
}

func (b *Broker) authorize(topicName, token string) error {
	if len(b.secret) == 0 {
		return nil
	}
	if !VerifyToken(b.secret, topicName, token) {
		return ErrAuth
	}
	return nil
}

// Producer attaches a producer to a topic.
func (b *Broker) Producer(topicName, token string) (*Producer, error) {
	if err := b.authorize(topicName, token); err != nil {
		return nil, err
	}
	t, err := b.getTopic(topicName)
	if err != nil {
		return nil, err
	}
	id := atomic.AddUint64(&b.producerSeq, 1)
	return &Producer{broker: b, topic: t, id: id}, nil
}

// Consumer attaches a consumer to a topic.
func (b *Broker) Consumer(topicName, token string) (*Consumer, error) {
	if err := b.authorize(topicName, token); err != nil {
		return nil, err
	}
	t, err := b.getTopic(topicName)
	if err != nil {
		return nil, err
	}
	return &Consumer{topic: t}, nil
}

// Close shuts down the broker; blocked consumers are woken with ErrClosed.
func (b *Broker) Close() {
	b.mu.Lock()
	b.closed = true
	topics := make([]*topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.Unlock()
	for _, t := range topics {
		t.mu.Lock()
		t.closed = true
		t.cond.Broadcast()
		t.mu.Unlock()
	}
}

// BytesSent returns the total payload bytes accepted across all topics.
func (b *Broker) BytesSent() int64 { return b.bytesSent.Load() }

// MessagesSent returns the number of unique messages delivered to queues.
func (b *Broker) MessagesSent() int64 { return b.msgsSent.Load() }

// DuplicatesSuppressed returns the number of redelivered messages dropped
// by the effectively-once filter.
func (b *Broker) DuplicatesSuppressed() int64 { return b.dupsSeen.Load() }

// TopicDepth returns the number of messages currently queued on a topic
// (published but not yet consumed) — the backpressure gauge of an online
// serving deployment. An unknown topic has depth 0.
func (b *Broker) TopicDepth(name string) int {
	b.mu.Lock()
	t, ok := b.topics[name]
	b.mu.Unlock()
	if !ok {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.queue)
}

// TopicDepths snapshots the queue depth of every topic the broker knows.
func (b *Broker) TopicDepths() map[string]int {
	b.mu.Lock()
	topics := make(map[string]*topic, len(b.topics))
	for name, t := range b.topics {
		topics[name] = t
	}
	b.mu.Unlock()
	out := make(map[string]int, len(topics))
	for name, t := range topics {
		t.mu.Lock()
		out[name] = len(t.queue)
		t.mu.Unlock()
	}
	return out
}

// Producer publishes messages to one topic.
type Producer struct {
	broker *Broker
	topic  *topic
	id     uint64
	seq    uint64
}

// Send publishes a payload with the next sequence number, blocking for its
// WAN transmission slot if a shaper is configured.
func (p *Producer) Send(payload []byte) error {
	p.seq++
	return p.SendWithID(p.seq, payload)
}

// SendContext is Send with a deadline: if the context expires while the
// producer is blocked on its WAN transmission slot, the send aborts with
// the context's error and the message is not enqueued. Used by the
// scoring server so a congested link cannot pin a round past its budget.
func (p *Producer) SendContext(ctx context.Context, payload []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p.seq++
	if p.broker.shaper != nil {
		if err := p.broker.shaper.TransmitContext(ctx, len(payload)); err != nil {
			return err
		}
	}
	return p.enqueue(p.seq, payload)
}

// SendWithID publishes with an explicit sequence number; re-sending an
// already-delivered ID is a no-op (effectively-once semantics, used by
// retry loops in unreliable transports).
func (p *Producer) SendWithID(id uint64, payload []byte) error {
	if p.broker.shaper != nil {
		p.broker.shaper.Transmit(len(payload))
	}
	return p.enqueue(id, payload)
}

// enqueue appends one message to the topic under dup suppression.
func (p *Producer) enqueue(id uint64, payload []byte) error {
	t := p.topic
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if id <= t.seen[p.id] {
		p.broker.dupsSeen.Add(1)
		return nil
	}
	t.seen[p.id] = id
	t.queue = append(t.queue, Message{ID: id, Producer: p.id, Payload: payload})
	p.broker.bytesSent.Add(int64(len(payload)))
	p.broker.msgsSent.Add(1)
	t.cond.Signal()
	return nil
}

// Consumer receives messages from one topic in FIFO order.
type Consumer struct {
	topic  *topic
	closed bool // guarded by topic.mu
}

// Close detaches this consumer: a blocked Receive returns ErrClosed. The
// topic and other consumers are unaffected.
func (c *Consumer) Close() {
	t := c.topic
	t.mu.Lock()
	c.closed = true
	t.cond.Broadcast()
	t.mu.Unlock()
}

// Receive blocks until a message is available, the consumer is closed, or
// the broker closes.
func (c *Consumer) Receive() ([]byte, error) {
	t := c.topic
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.queue) == 0 {
		if t.closed || c.closed {
			return nil, ErrClosed
		}
		t.cond.Wait()
	}
	m := t.queue[0]
	t.queue = t.queue[1:]
	return m.Payload, nil
}

// ReceiveTimeout is Receive with a deadline; it returns a timeout error if
// no message arrives in time.
func (c *Consumer) ReceiveTimeout(d time.Duration) ([]byte, error) {
	t := c.topic
	// sync.Cond has no timed wait; a one-shot timer flips a flag under the
	// topic lock and wakes every waiter, so the wait burns no CPU.
	expired := false
	timer := time.AfterFunc(d, func() {
		t.mu.Lock()
		expired = true
		t.cond.Broadcast()
		t.mu.Unlock()
	})
	defer timer.Stop()
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.queue) == 0 {
		if t.closed || c.closed {
			return nil, ErrClosed
		}
		if expired {
			return nil, fmt.Errorf("mq: receive timed out after %v", d)
		}
		t.cond.Wait()
	}
	m := t.queue[0]
	t.queue = t.queue[1:]
	return m.Payload, nil
}
