package mq

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Shaper models the constrained public network between data centers as a
// single serialized link: each transmission occupies the link for
// size/bandwidth seconds (plus a fixed per-message latency), and
// concurrent senders queue behind each other — exactly the congestion
// behaviour that motivates the blaster-style encryption scheme (Section
// 4.1 "the message queue would be congested due to the bulk of
// transmission").
//
// A zero bandwidth means an unconstrained link (only latency applies);
// both zero disables shaping entirely.
type Shaper struct {
	bandwidth float64 // bytes per second
	latency   time.Duration

	mu       sync.Mutex
	nextFree time.Time

	overhead atomic.Int64 // per-message framing bytes added to every Transmit

	bytes atomic.Int64
	waits atomic.Int64 // cumulative nanoseconds spent blocked
}

// NewShaper builds a shaper; bandwidthMbps <= 0 means unlimited.
func NewShaper(bandwidthMbps float64, latency time.Duration) *Shaper {
	bps := 0.0
	if bandwidthMbps > 0 {
		bps = bandwidthMbps * 1e6 / 8
	}
	return &Shaper{bandwidth: bps, latency: latency}
}

// SetPerMessageOverhead makes every Transmit account (and occupy the link
// for) n extra bytes of framing — the gateway's frame header, so WAN
// simulation reflects true wire size rather than bare payload size. Zero
// (the default) keeps payload-only accounting. Set before traffic flows.
func (s *Shaper) SetPerMessageOverhead(n int) { s.overhead.Store(int64(n)) }

// Transmit blocks the caller for the transmission slot of n bytes (plus
// the configured per-message framing overhead) and the propagation
// latency, then returns. It also accounts the bytes.
func (s *Shaper) Transmit(n int) {
	s.TransmitContext(context.Background(), n)
}

// TransmitContext is Transmit with a deadline: an already-expired context
// returns its error without reserving the link, and a context that
// expires mid-wait unblocks the sender early. The link reservation is
// kept either way — the bytes were "put on the wire"; only the sender
// stops waiting for them — so shaping stays consistent for later
// traffic.
func (s *Shaper) TransmitContext(ctx context.Context, n int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n += int(s.overhead.Load())
	s.bytes.Add(int64(n))
	if s.bandwidth <= 0 && s.latency <= 0 {
		return nil
	}
	var wait time.Duration
	if s.bandwidth > 0 {
		tx := time.Duration(float64(n) / s.bandwidth * float64(time.Second))
		s.mu.Lock()
		now := time.Now()
		start := s.nextFree
		if start.Before(now) {
			start = now
		}
		s.nextFree = start.Add(tx)
		done := s.nextFree
		s.mu.Unlock()
		wait = time.Until(done)
	}
	wait += s.latency
	if wait <= 0 {
		return nil
	}
	s.waits.Add(int64(wait))
	if ctx.Done() == nil {
		time.Sleep(wait)
		return nil
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Bytes returns the total bytes transmitted through the shaper.
func (s *Shaper) Bytes() int64 { return s.bytes.Load() }

// BlockedTime returns the cumulative time senders spent waiting on the
// link, a proxy for the paper's CipherComm lane in the Gantt charts.
func (s *Shaper) BlockedTime() time.Duration { return time.Duration(s.waits.Load()) }

// Reset zeroes the byte and wait counters (the link state is kept).
func (s *Shaper) Reset() {
	s.bytes.Store(0)
	s.waits.Store(0)
}
