package mq

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// TestTransmitContextAbortsOnDeadline: a sender blocked on the serialized
// WAN link unblocks when its context expires, but the link reservation is
// kept — the bytes went on the wire, only the sender stopped waiting.
func TestTransmitContextAbortsOnDeadline(t *testing.T) {
	// 1 Mbps = 125000 B/s: 25000 bytes occupy the link for 200ms.
	s := NewShaper(1, 0)

	// An already-expired context is refused before touching the link.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.TransmitContext(expired, 25000); !errors.Is(err, context.Canceled) {
		t.Fatalf("TransmitContext(expired) = %v, want context.Canceled", err)
	}
	if s.Bytes() != 0 {
		t.Fatalf("expired send accounted %d bytes, want 0", s.Bytes())
	}

	// A 20ms budget cannot cover a 200ms transmission: the sender aborts
	// near its deadline, far before the transmission slot ends.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	start := time.Now()
	err := s.TransmitContext(ctx, 25000)
	elapsed := time.Since(start)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("TransmitContext = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 150*time.Millisecond {
		t.Fatalf("aborted sender waited %v, want ~20ms", elapsed)
	}

	// The reservation survives the abort: a 10ms transmission that would
	// clear an idle link immediately still cannot fit in a 50ms budget,
	// because it queues behind the ~180ms the aborted sender left behind.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if err := s.TransmitContext(ctx2, 1250); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("send behind kept reservation = %v, want context.DeadlineExceeded", err)
	}
}

// TestProducerSendContext: a deadline-aborted send never reaches the
// topic, and an unbounded send on the same producer still goes through.
func TestProducerSendContext(t *testing.T) {
	// 80ms per 10000-byte message.
	b := NewBroker(WithShaper(NewShaper(1, 0)))
	defer b.Close()
	prod, err := b.Producer("x", "")
	if err != nil {
		t.Fatal(err)
	}
	cons, err := b.Consumer("x", "")
	if err != nil {
		t.Fatal(err)
	}

	payload := make([]byte, 10000)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	if err := prod.SendContext(ctx, payload); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("congested SendContext = %v, want context.DeadlineExceeded", err)
	}
	cancel()
	if depth := b.TopicDepth("x"); depth != 0 {
		t.Fatalf("aborted send enqueued: topic depth %d, want 0", depth)
	}

	if err := prod.SendContext(context.Background(), []byte("after")); err != nil {
		t.Fatalf("unbounded SendContext: %v", err)
	}
	got, err := cons.ReceiveTimeout(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("after")) {
		t.Fatalf("received %q, want %q", got, "after")
	}
}

// TestProducerSendContextNoShaper: without a shaper SendContext is just a
// guarded Send — live contexts pass, dead ones refuse before enqueueing.
func TestProducerSendContextNoShaper(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	prod, err := b.Producer("y", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := prod.SendContext(context.Background(), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := prod.SendContext(cancelled, []byte("dead")); !errors.Is(err, context.Canceled) {
		t.Fatalf("SendContext(cancelled) = %v, want context.Canceled", err)
	}
	if depth := b.TopicDepth("y"); depth != 1 {
		t.Fatalf("topic depth %d, want 1 (only the live send)", depth)
	}
}
