package mq

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"vf2boost/internal/wire"
)

// The TCP gateway lets parties in separate processes attach to a broker
// running on a gateway machine, the deployment shape of Section 3.1 where
// "message queues on several gateway machines route the cross-party
// communication". The wire protocol is a one-line JSON handshake followed
// by length-prefixed frames:
//
//	handshake: {"topic": "...", "token": "...", "role": "producer"}\n
//	reply:     "ok\n" or "err <reason>\n"
//	frame:     8-byte big-endian ID | 4-byte big-endian length | payload

type handshake struct {
	Topic string `json:"topic"`
	Token string `json:"token"`
	Role  string `json:"role"`
}

// maxFrame bounds a single payload (64 MiB) to fail fast on corruption.
const maxFrame = 64 << 20

// FrameOverhead is the gateway's per-message framing cost in bytes (the
// 8-byte ID plus 4-byte length header). WAN shapers account it via
// Shaper.SetPerMessageOverhead so simulated transfer reflects what the
// TCP deployment actually puts on the wire.
const FrameOverhead = 12

// Gateway serves broker access over TCP.
type Gateway struct {
	broker *Broker
	lis    net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool
}

// NewGateway wraps a broker.
func NewGateway(b *Broker) *Gateway {
	return &Gateway{broker: b, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serve runs in the background until Close.
func (g *Gateway) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("mq: gateway listen: %w", err)
	}
	g.lis = lis
	g.wg.Add(1)
	go g.acceptLoop()
	return lis.Addr().String(), nil
}

func (g *Gateway) acceptLoop() {
	defer g.wg.Done()
	for {
		conn, err := g.lis.Accept()
		if err != nil {
			return
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			conn.Close()
			return
		}
		g.conns[conn] = struct{}{}
		g.mu.Unlock()
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			defer func() {
				g.mu.Lock()
				delete(g.conns, conn)
				g.mu.Unlock()
				conn.Close()
			}()
			g.handle(conn)
		}()
	}
}

func (g *Gateway) handle(conn net.Conn) {
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		return
	}
	var hs handshake
	if err := json.Unmarshal([]byte(strings.TrimSpace(line)), &hs); err != nil {
		fmt.Fprintf(conn, "err bad handshake\n")
		return
	}
	switch hs.Role {
	case "producer":
		p, err := g.broker.Producer(hs.Topic, hs.Token)
		if err != nil {
			fmt.Fprintf(conn, "err %v\n", err)
			return
		}
		fmt.Fprintf(conn, "ok\n")
		for {
			id, payload, err := readFrame(br)
			if err != nil {
				return
			}
			if err := p.SendWithID(id, payload); err != nil {
				return
			}
		}
	case "consumer":
		c, err := g.broker.Consumer(hs.Topic, hs.Token)
		if err != nil {
			fmt.Fprintf(conn, "err %v\n", err)
			return
		}
		fmt.Fprintf(conn, "ok\n")
		// Consumer clients never send after the handshake, so a read on
		// the connection only returns when the client disconnects (or the
		// gateway closes the socket); either way, detach the broker
		// consumer so the Receive loop below unblocks.
		go func() {
			io.Copy(io.Discard, br)
			c.Close()
		}()
		bw := bufio.NewWriter(conn)
		seq := uint64(0)
		for {
			payload, err := c.Receive()
			if err != nil {
				return
			}
			seq++
			if err := writeFrame(bw, seq, payload); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
			// The frame is on the socket and the queue handed us the only
			// reference; recycle it for the next readFrame.
			wire.PutBuf(payload)
		}
	default:
		fmt.Fprintf(conn, "err unknown role %q\n", hs.Role)
	}
}

// Close stops the gateway and severs all client connections.
func (g *Gateway) Close() {
	g.mu.Lock()
	g.closed = true
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	if g.lis != nil {
		g.lis.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	g.wg.Wait()
}

func readFrame(r io.Reader) (uint64, []byte, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	id := binary.BigEndian.Uint64(hdr[:8])
	n := binary.BigEndian.Uint32(hdr[8:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("mq: frame of %d bytes exceeds limit", n)
	}
	// Pooled: the consuming link recycles the buffer after decoding (a
	// gateway producer role hands it to the broker queue, whose consumer
	// does the same).
	payload := wire.GetBufN(int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return id, payload, nil
}

func writeFrame(w io.Writer, id uint64, payload []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[:8], id)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func dial(addr, topic, token, role string) (net.Conn, *bufio.Reader, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("mq: dial gateway: %w", err)
	}
	hs, _ := json.Marshal(handshake{Topic: topic, Token: token, Role: role})
	if _, err := conn.Write(append(hs, '\n')); err != nil {
		conn.Close()
		return nil, nil, err
	}
	br := bufio.NewReader(conn)
	reply, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	reply = strings.TrimSpace(reply)
	if reply != "ok" {
		conn.Close()
		return nil, nil, fmt.Errorf("mq: gateway rejected %s: %s", role, reply)
	}
	return conn, br, nil
}

// RemoteProducer publishes to a topic over TCP.
type RemoteProducer struct {
	conn net.Conn
	bw   *bufio.Writer
	mu   sync.Mutex
	seq  uint64
}

// DialProducer attaches a producer to a remote gateway.
func DialProducer(addr, topic, token string) (*RemoteProducer, error) {
	conn, _, err := dial(addr, topic, token, "producer")
	if err != nil {
		return nil, err
	}
	return &RemoteProducer{conn: conn, bw: bufio.NewWriter(conn)}, nil
}

// Send publishes one payload.
func (p *RemoteProducer) Send(payload []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	if err := writeFrame(p.bw, p.seq, payload); err != nil {
		return err
	}
	return p.bw.Flush()
}

// Close severs the connection.
func (p *RemoteProducer) Close() error { return p.conn.Close() }

// RemoteConsumer receives from a topic over TCP.
type RemoteConsumer struct {
	conn net.Conn
	br   *bufio.Reader
	mu   sync.Mutex
}

// DialConsumer attaches a consumer to a remote gateway.
func DialConsumer(addr, topic, token string) (*RemoteConsumer, error) {
	conn, br, err := dial(addr, topic, token, "consumer")
	if err != nil {
		return nil, err
	}
	return &RemoteConsumer{conn: conn, br: br}, nil
}

// Receive blocks for the next payload.
func (c *RemoteConsumer) Receive() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, payload, err := readFrame(c.br)
	return payload, err
}

// Close severs the connection.
func (c *RemoteConsumer) Close() error { return c.conn.Close() }
