package mq

import "testing"

// TestShaperPerMessageOverhead pins the framing-aware accounting: with
// SetPerMessageOverhead the shaper charges every transmission the
// gateway's frame header on top of the payload, and without it the
// legacy payload-only accounting is unchanged.
func TestShaperPerMessageOverhead(t *testing.T) {
	s := NewShaper(0, 0)
	s.Transmit(100)
	if got := s.Bytes(); got != 100 {
		t.Fatalf("payload-only accounting: got %d bytes, want 100", got)
	}

	s.Reset()
	s.SetPerMessageOverhead(FrameOverhead)
	s.Transmit(100)
	s.Transmit(0) // even an empty payload pays for its frame header
	if got, want := s.Bytes(), int64(100+2*FrameOverhead); got != want {
		t.Fatalf("framed accounting: got %d bytes, want %d", got, want)
	}

	s.Reset()
	s.SetPerMessageOverhead(0)
	s.Transmit(50)
	if got := s.Bytes(); got != 50 {
		t.Fatalf("overhead should be switchable back off: got %d bytes, want 50", got)
	}
}

// TestShapedBrokerChargesFrameOverhead runs real traffic through a
// shaped broker and checks the byte counter includes per-message framing
// — what the WAN sessions (core.WithWAN) rely on for honest transfer
// totals.
func TestShapedBrokerChargesFrameOverhead(t *testing.T) {
	sh := NewShaper(0, 0)
	sh.SetPerMessageOverhead(FrameOverhead)
	b := NewBroker(WithShaper(sh))
	defer b.Close()

	p, err := b.Producer("t", "")
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.Consumer("t", "")
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{make([]byte, 400), make([]byte, 25), {}}
	var want int64
	for _, pl := range payloads {
		if err := p.Send(pl); err != nil {
			t.Fatal(err)
		}
		want += int64(len(pl) + FrameOverhead)
		if _, err := c.Receive(); err != nil {
			t.Fatal(err)
		}
	}
	if got := sh.Bytes(); got != want {
		t.Fatalf("shaped broker accounted %d bytes, want %d", got, want)
	}
}
