package he

import (
	"bytes"
	"math/big"
	"testing"
)

// The cross-backend conformance suite: every registered backend — the
// lifted scalar schemes and the lane-packed ones — runs the same scalar
// contract, vector contract, hostile-input, and signed-range gates via
// subtests, so a future backend gets the whole battery by registering.

const (
	confBits     = 256
	confSlots    = 3
	confLaneBits = 40
	confHeadroom = 12
)

// confBackend is one backend under test: the private side plus a public
// side built from the private side's key material, the way a passive
// party would build it at session setup.
type confBackend struct {
	dec VecDecryptor
	pub Backend
}

func conformanceBackends(t *testing.T) map[string]confBackend {
	t.Helper()
	out := map[string]confBackend{}
	for _, name := range Names() {
		p := Params{Bits: confBits, Slots: confSlots, LaneBits: confLaneBits, Headroom: confHeadroom}
		dec, err := OpenDecryptor(name, p)
		if err != nil {
			t.Fatalf("%s: OpenDecryptor: %v", name, err)
		}
		pp := p
		if Family(name) == "paillier" {
			pp.N = dec.N()
		}
		pub, err := Open(name, pp)
		if err != nil {
			t.Fatalf("%s: Open: %v", name, err)
		}
		out[name] = confBackend{dec: dec, pub: pub}
	}
	return out
}

func TestRegistryLists(t *testing.T) {
	for _, name := range []string{"paillier", "mock", "paillier-batched", "mock-batched"} {
		if !Registered(name) {
			t.Errorf("backend %s not registered", name)
		}
	}
	if Batched("paillier") || Batched("mock") {
		t.Error("scalar backends must not report batched")
	}
	if !Batched("paillier-batched") || !Batched("mock-batched") {
		t.Error("lane-packed backends must report batched")
	}
	if Family("paillier-batched") != "paillier" || Family("mock-batched") != "mock" {
		t.Error("batched backends must report their scheme family")
	}
	if _, err := Open("no-such-backend", Params{}); err == nil {
		t.Fatal("unknown backend must fail")
	} else if !bytes.Contains([]byte(err.Error()), []byte("mock-batched")) {
		t.Errorf("unknown-backend error should list registered names, got: %v", err)
	}
}

func TestBackendConformance(t *testing.T) {
	for name, b := range conformanceBackends(t) {
		t.Run(name, func(t *testing.T) {
			t.Run("metadata", func(t *testing.T) { testBackendMetadata(t, name, b) })
			t.Run("scalar-contract", func(t *testing.T) { testScalarContract(t, b) })
			t.Run("vector-roundtrip", func(t *testing.T) { testVectorRoundTrip(t, b) })
			t.Run("vector-accumulate", func(t *testing.T) { testVectorAccumulate(t, b) })
			t.Run("vector-sub", func(t *testing.T) { testVectorSub(t, b) })
			t.Run("vector-marshal", func(t *testing.T) { testVectorMarshal(t, b) })
			t.Run("hostile-input", func(t *testing.T) { testHostileInput(t, b) })
			t.Run("signed-edges", func(t *testing.T) { testSignedEdges(t, b.dec) })
		})
	}
}

func testBackendMetadata(t *testing.T, name string, b confBackend) {
	for _, be := range []Backend{b.dec, b.pub} {
		if be.BackendName() != name {
			t.Errorf("BackendName = %q, want %q", be.BackendName(), name)
		}
		if be.Name() != Family(name) {
			t.Errorf("Name (scheme family) = %q, want %q", be.Name(), Family(name))
		}
		if be.Slots() < 1 {
			t.Errorf("Slots = %d", be.Slots())
		}
		if be.Headroom() < 0 || be.LaneBits() <= be.Headroom() {
			t.Errorf("lane geometry: laneBits=%d headroom=%d", be.LaneBits(), be.Headroom())
		}
		if be.Slots()*be.LaneBits() > be.Bits() {
			t.Errorf("%d lanes of %d bits exceed %d-bit plaintexts", be.Slots(), be.LaneBits(), be.Bits())
		}
		if Batched(name) != (be.Slots() > 1) {
			t.Errorf("Batched(%s)=%v but Slots=%d", name, Batched(name), be.Slots())
		}
		if be.Base() == nil {
			t.Error("Base() must return the wrapped scheme")
		}
		if be.VecCiphertextBytes() <= 0 {
			t.Errorf("VecCiphertextBytes = %d", be.VecCiphertextBytes())
		}
	}
	if b.pub.Slots() != b.dec.Slots() || b.pub.LaneBits() != b.dec.LaneBits() {
		t.Error("public and private sides disagree on lane geometry")
	}
}

// testScalarContract is the pre-existing scheme contract: every backend
// still speaks the scalar interface.
func testScalarContract(t *testing.T, b confBackend) {
	d := b.dec
	enc := func(v int64) Ciphertext {
		m := big.NewInt(v)
		if m.Sign() < 0 {
			m.Add(m, d.N())
		}
		ct, err := b.pub.Encrypt(m)
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", v, err)
		}
		return ct
	}
	dec := func(ct Ciphertext) int64 {
		m, err := d.Decrypt(ct)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		return Signed(d, m).Int64()
	}
	if got := dec(b.pub.Add(enc(1000), enc(-234))); got != 766 {
		t.Errorf("Add: got %d, want 766", got)
	}
	sub, err := b.pub.Sub(enc(100), enc(42))
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if got := dec(sub); got != 58 {
		t.Errorf("Sub: got %d, want 58", got)
	}
	if got := dec(b.pub.MulScalar(enc(21), big.NewInt(-2))); got != -42 {
		t.Errorf("MulScalar: got %d, want -42", got)
	}
	acc := b.pub.EncryptZero()
	for i := int64(1); i <= 5; i++ {
		acc = b.pub.AddInto(acc, enc(i))
	}
	if got := dec(acc); got != 15 {
		t.Errorf("AddInto chain: got %d, want 15", got)
	}
	raw := b.pub.Marshal(enc(777))
	back, err := d.Unmarshal(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got := dec(back); got != 777 {
		t.Errorf("marshal round trip: got %d, want 777", got)
	}
}

// maxLane is the widest legal lane value: 2^(laneBits−headroom) − 1,
// clamped to N−1 for 1-slot backends whose lane is the whole plaintext
// space.
func maxLane(b Backend) *big.Int {
	m := new(big.Int).Lsh(big.NewInt(1), uint(b.LaneBits()-b.Headroom()))
	m.Sub(m, big.NewInt(1))
	if top := new(big.Int).Sub(b.N(), big.NewInt(1)); m.Cmp(top) > 0 {
		return top
	}
	return m
}

func testVectorRoundTrip(t *testing.T, b confBackend) {
	lanes := make([]*big.Int, b.pub.Slots())
	for i := range lanes {
		lanes[i] = big.NewInt(int64(i)*1000 + 1)
	}
	lanes[0] = maxLane(b.pub) // widest legal lane value
	v, err := b.pub.EncryptVec(lanes)
	if err != nil {
		t.Fatalf("EncryptVec: %v", err)
	}
	got, err := b.dec.DecryptVec(v)
	if err != nil {
		t.Fatalf("DecryptVec: %v", err)
	}
	if len(got) != b.dec.Slots() {
		t.Fatalf("DecryptVec returned %d lanes, want %d", len(got), b.dec.Slots())
	}
	for i, want := range lanes {
		if got[i].Cmp(want) != 0 {
			t.Errorf("lane %d: got %v, want %v", i, got[i], want)
		}
	}
	// Partial vectors: missing trailing lanes decrypt to zero.
	v, err = b.pub.EncryptVec(lanes[:1])
	if err != nil {
		t.Fatalf("EncryptVec(partial): %v", err)
	}
	got, err = b.dec.DecryptVec(v)
	if err != nil {
		t.Fatalf("DecryptVec(partial): %v", err)
	}
	if got[0].Cmp(lanes[0]) != 0 {
		t.Errorf("partial lane 0: got %v, want %v", got[0], lanes[0])
	}
	for i := 1; i < len(got); i++ {
		if got[i].Sign() != 0 {
			t.Errorf("missing lane %d decrypted to %v, want 0", i, got[i])
		}
	}
}

func testVectorAccumulate(t *testing.T, b confBackend) {
	// Sum well past a single lane's value width: the headroom (or full
	// plaintext space for 1-slot backends) must absorb it without lanes
	// bleeding into each other.
	const adds = 100
	slots := b.pub.Slots()
	want := make([]*big.Int, slots)
	for i := range want {
		want[i] = new(big.Int)
	}
	acc := b.pub.EncryptZeroVec()
	for k := 0; k < adds; k++ {
		lanes := make([]*big.Int, slots)
		for i := range lanes {
			lanes[i] = big.NewInt(int64(k*slots + i + 1))
			want[i].Add(want[i], lanes[i])
		}
		v, err := b.pub.EncryptVec(lanes)
		if err != nil {
			t.Fatalf("EncryptVec: %v", err)
		}
		acc = b.pub.AddVecInto(acc, v)
	}
	got, err := b.dec.DecryptVec(acc)
	if err != nil {
		t.Fatalf("DecryptVec: %v", err)
	}
	for i := range want {
		if got[i].Cmp(want[i]) != 0 {
			t.Errorf("lane %d: accumulated %v, want %v", i, got[i], want[i])
		}
	}
}

func testVectorSub(t *testing.T, b confBackend) {
	slots := b.pub.Slots()
	hi := make([]*big.Int, slots)
	lo := make([]*big.Int, slots)
	for i := range hi {
		hi[i] = big.NewInt(int64(1000 + i*7))
		lo[i] = big.NewInt(int64(i * 3))
	}
	a, err := b.pub.EncryptVec(hi)
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.pub.EncryptVec(lo)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := b.pub.SubVec(a, c)
	if err != nil {
		t.Fatalf("SubVec: %v", err)
	}
	got, err := b.dec.DecryptVec(diff)
	if err != nil {
		t.Fatalf("DecryptVec: %v", err)
	}
	for i := range hi {
		want := new(big.Int).Sub(hi[i], lo[i])
		if got[i].Cmp(want) != 0 {
			t.Errorf("lane %d: got %v, want %v", i, got[i], want)
		}
	}
}

func testVectorMarshal(t *testing.T, b confBackend) {
	lanes := []*big.Int{big.NewInt(123456)}
	v, err := b.pub.EncryptVec(lanes)
	if err != nil {
		t.Fatal(err)
	}
	raw := b.pub.MarshalVec(v)
	if len(raw) == 0 {
		t.Fatal("MarshalVec returned empty")
	}
	if len(raw) > b.pub.VecCiphertextBytes() {
		t.Errorf("marshaled %d bytes, accounting says %d", len(raw), b.pub.VecCiphertextBytes())
	}
	back, err := b.dec.UnmarshalVec(raw)
	if err != nil {
		t.Fatalf("UnmarshalVec: %v", err)
	}
	got, err := b.dec.DecryptVec(back)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Cmp(lanes[0]) != 0 {
		t.Errorf("marshal round trip: got %v, want %v", got[0], lanes[0])
	}
}

func testHostileInput(t *testing.T, b confBackend) {
	// Too many lanes.
	tooMany := make([]*big.Int, b.pub.Slots()+1)
	for i := range tooMany {
		tooMany[i] = big.NewInt(1)
	}
	if _, err := b.pub.EncryptVec(tooMany); err == nil {
		t.Error("EncryptVec must reject more lanes than slots")
	}
	// Empty vector.
	if _, err := b.pub.EncryptVec(nil); err == nil {
		t.Error("EncryptVec must reject zero lanes")
	}
	// Negative lane.
	if _, err := b.pub.EncryptVec([]*big.Int{big.NewInt(-1)}); err == nil {
		t.Error("EncryptVec must reject negative lane values")
	}
	// A lane value one bit past the headroom bound.
	over := new(big.Int).Add(maxLane(b.pub), big.NewInt(1))
	if b.pub.Headroom() > 0 {
		if _, err := b.pub.EncryptVec([]*big.Int{over}); err == nil {
			t.Error("EncryptVec must reject lane values wider than laneBits-headroom")
		}
	}
	// Out-of-range wire bytes must be rejected by UnmarshalVec.
	huge := make([]byte, 4*confBits/8)
	for i := range huge {
		huge[i] = 0xFF
	}
	if _, err := b.pub.UnmarshalVec(huge); err == nil {
		t.Error("UnmarshalVec must reject out-of-range ciphertext bytes")
	}
	// Lane-layout overflow must surface at DecryptVec, not corrupt
	// neighbouring lanes silently.
	if b.dec.Slots() > 1 {
		wide := new(big.Int).Lsh(big.NewInt(1), uint(b.dec.Slots()*b.dec.LaneBits()))
		ct, err := b.pub.Encrypt(wide)
		if err == nil {
			if _, err := b.dec.DecryptVec(vecCt{ct}); err == nil {
				t.Error("DecryptVec must reject plaintexts overflowing the lane layout")
			}
		}
	}
}

func testSignedEdges(t *testing.T, d VecDecryptor) {
	n := d.N()
	half := new(big.Int).Rsh(n, 1)
	cases := []struct {
		m    *big.Int
		want *big.Int
	}{
		{big.NewInt(0), big.NewInt(0)},
		{big.NewInt(1), big.NewInt(1)},
		{new(big.Int).Set(half), new(big.Int).Set(half)},
		{new(big.Int).Add(half, big.NewInt(1)), new(big.Int).Sub(new(big.Int).Add(half, big.NewInt(1)), n)},
		{new(big.Int).Sub(n, big.NewInt(1)), big.NewInt(-1)},
	}
	for _, c := range cases {
		if got := Signed(d, c.m); got.Cmp(c.want) != 0 {
			t.Errorf("Signed(%v) = %v, want %v", c.m, got, c.want)
		}
	}
}

// TestSignedNoAlloc is the satellite-2 gate: mapping a non-negative
// plaintext through Signed must not allocate (the N/2 threshold is
// precomputed per scheme).
func TestSignedNoAlloc(t *testing.T) {
	s := NewMock(256)
	m := big.NewInt(12345)
	allocs := testing.AllocsPerRun(1000, func() {
		Signed(s, m)
	})
	if allocs != 0 {
		t.Fatalf("Signed allocates %.1f objects per non-negative call, want 0", allocs)
	}
}

// BenchmarkSigned measures the decrypt-loop helper; before the halfer
// precompute it allocated a fresh big.Int per call.
func BenchmarkSigned(b *testing.B) {
	s := NewMock(2048)
	m := big.NewInt(1 << 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Signed(s, m)
	}
}

// FuzzVecUnmarshal drives hostile bytes through every backend's
// UnmarshalVec: no input may panic, and whatever unmarshals must
// re-marshal stably.
func FuzzVecUnmarshal(f *testing.F) {
	mockB, err := NewBatched(NewMock(confBits), "mock-batched", confSlots, confLaneBits, confHeadroom)
	if err != nil {
		f.Fatal(err)
	}
	pd, err := NewPaillier(confBits, 0)
	if err != nil {
		f.Fatal(err)
	}
	pb, err := NewBatchedDecryptor(pd, "paillier-batched", confSlots, confLaneBits, confHeadroom)
	if err != nil {
		f.Fatal(err)
	}
	backends := []Backend{mockB, pb}
	if v, err := pb.EncryptVec([]*big.Int{big.NewInt(7), big.NewInt(9)}); err == nil {
		f.Add(pb.MarshalVec(v))
	}
	if v, err := mockB.EncryptVec([]*big.Int{big.NewInt(7)}); err == nil {
		f.Add(mockB.MarshalVec(v))
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(bytes.Repeat([]byte{0xFF}, 2*confBits/8))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, b := range backends {
			v, err := b.UnmarshalVec(data) // must not panic
			if err != nil {
				continue
			}
			raw := b.MarshalVec(v)
			v2, err := b.UnmarshalVec(raw)
			if err != nil {
				t.Fatalf("%s: re-unmarshal of marshaled ciphertext failed: %v", b.BackendName(), err)
			}
			if !bytes.Equal(raw, b.MarshalVec(v2)) {
				t.Fatalf("%s: unstable marshal round trip", b.BackendName())
			}
		}
	})
}
