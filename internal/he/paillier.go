package he

import (
	"crypto/rand"
	"fmt"
	"math/big"

	"vf2boost/internal/paillier"
)

// paillierCt wraps a Paillier ciphertext to satisfy he.Ciphertext.
type paillierCt struct {
	ct paillier.Ciphertext
}

func (paillierCt) isCiphertext() {}

// PaillierScheme adapts internal/paillier to the Scheme interface. When a
// pool is configured, encryption consumes precomputed obfuscators.
type PaillierScheme struct {
	pk   *paillier.PublicKey
	pool *paillier.ObfuscatorPool
}

// PaillierDecryptor is the Scheme plus the private key; only Party B holds
// one.
type PaillierDecryptor struct {
	PaillierScheme
	priv *paillier.PrivateKey
}

// NewPaillier generates a fresh S-bit key pair and returns the decryptor
// side. poolWorkers > 0 starts an obfuscator pool with that many
// background workers (0 disables pooling, so each Encrypt pays the full
// r^n exponentiation — this is the VF-GBDT baseline configuration).
func NewPaillier(bits, poolWorkers int) (*PaillierDecryptor, error) {
	priv, err := paillier.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, err
	}
	return NewPaillierFromKey(priv, poolWorkers), nil
}

// NewPaillierPublic wraps a public key for a passive party, which can
// encrypt and operate homomorphically but never decrypt.
func NewPaillierPublic(pk *paillier.PublicKey) *PaillierScheme {
	return &PaillierScheme{pk: pk}
}

// NewPaillierFromKey wraps an existing private key.
func NewPaillierFromKey(priv *paillier.PrivateKey, poolWorkers int) *PaillierDecryptor {
	d := &PaillierDecryptor{
		PaillierScheme: PaillierScheme{pk: priv.Public()},
		priv:           priv,
	}
	if poolWorkers > 0 {
		d.pool = paillier.NewObfuscatorPool(priv.Public(), poolWorkers, 8*poolWorkers, nil)
	}
	return d
}

// PublicScheme returns the encrypt-only view that is shared with passive
// parties.
func (d *PaillierDecryptor) PublicScheme() *PaillierScheme { return &d.PaillierScheme }

// Close releases the obfuscator pool, if any.
func (d *PaillierDecryptor) Close() {
	if d.pool != nil {
		d.pool.Close()
		d.pool = nil
	}
}

func (s *PaillierScheme) Name() string { return "paillier" }
func (s *PaillierScheme) N() *big.Int  { return s.pk.N }
func (s *PaillierScheme) Bits() int    { return s.pk.Bits() }

func (s *PaillierScheme) Encrypt(m *big.Int) (Ciphertext, error) {
	if s.pool != nil {
		rn, err := s.pool.Next()
		if err != nil {
			return nil, err
		}
		return paillierCt{s.pk.EncryptWithObfuscator(m, rn)}, nil
	}
	ct, err := s.pk.Encrypt(rand.Reader, m)
	if err != nil {
		return nil, err
	}
	return paillierCt{ct}, nil
}

func (s *PaillierScheme) EncryptZero() Ciphertext {
	return paillierCt{s.pk.EncryptZero()}
}

func (s *PaillierScheme) Add(a, b Ciphertext) Ciphertext {
	return paillierCt{s.pk.Add(a.(paillierCt).ct, b.(paillierCt).ct)}
}

func (s *PaillierScheme) AddInto(dst, b Ciphertext) Ciphertext {
	d := dst.(paillierCt)
	s.pk.AddInto(&d.ct, b.(paillierCt).ct)
	return d
}

func (s *PaillierScheme) Sub(a, b Ciphertext) Ciphertext {
	return paillierCt{s.pk.Sub(a.(paillierCt).ct, b.(paillierCt).ct)}
}

func (s *PaillierScheme) MulScalar(a Ciphertext, k *big.Int) Ciphertext {
	return paillierCt{s.pk.MulScalar(a.(paillierCt).ct, k)}
}

func (s *PaillierScheme) Marshal(ct Ciphertext) []byte {
	return ct.(paillierCt).ct.Bytes()
}

func (s *PaillierScheme) Unmarshal(b []byte) (Ciphertext, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("he: empty paillier ciphertext")
	}
	return paillierCt{paillier.CiphertextFromBytes(b)}, nil
}

func (s *PaillierScheme) CiphertextBytes() int { return 2 * s.pk.Bits() / 8 }

func (d *PaillierDecryptor) Decrypt(ct Ciphertext) (*big.Int, error) {
	return d.priv.Decrypt(ct.(paillierCt).ct)
}

var (
	_ Scheme    = (*PaillierScheme)(nil)
	_ Decryptor = (*PaillierDecryptor)(nil)
)
