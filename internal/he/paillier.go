package he

import (
	"crypto/rand"
	"fmt"
	"math/big"

	"vf2boost/internal/paillier"
)

// paillierCt wraps a Paillier ciphertext to satisfy he.Ciphertext.
type paillierCt struct {
	ct paillier.Ciphertext
}

func (paillierCt) isCiphertext() {}

// PaillierScheme adapts internal/paillier to the Scheme interface. When a
// pool is configured, encryption consumes precomputed obfuscators.
type PaillierScheme struct {
	pk   *paillier.PublicKey
	pool *paillier.ObfuscatorPool
	// half is n/2, precomputed so Signed never allocates the threshold
	// in the decrypt hot loop.
	half *big.Int
}

// PaillierDecryptor is the Scheme plus the private key; only Party B holds
// one.
type PaillierDecryptor struct {
	PaillierScheme
	priv        *paillier.PrivateKey
	poolWorkers int
}

// NewPaillier generates a fresh S-bit key pair and returns the decryptor
// side. poolWorkers > 0 starts an obfuscator pool with that many
// background workers (0 disables pooling, so each Encrypt pays the full
// r^n exponentiation — this is the VF-GBDT baseline configuration).
func NewPaillier(bits, poolWorkers int) (*PaillierDecryptor, error) {
	priv, err := paillier.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, err
	}
	return NewPaillierFromKey(priv, poolWorkers), nil
}

// NewPaillierPublic wraps a public key for a passive party, which can
// encrypt and operate homomorphically but never decrypt.
func NewPaillierPublic(pk *paillier.PublicKey) *PaillierScheme {
	return &PaillierScheme{pk: pk, half: new(big.Int).Rsh(pk.N, 1)}
}

// NewPaillierFromKey wraps an existing private key.
func NewPaillierFromKey(priv *paillier.PrivateKey, poolWorkers int) *PaillierDecryptor {
	pk := priv.Public()
	d := &PaillierDecryptor{
		PaillierScheme: PaillierScheme{pk: pk, half: new(big.Int).Rsh(pk.N, 1)},
		priv:           priv,
		poolWorkers:    poolWorkers,
	}
	if poolWorkers > 0 {
		d.pool = paillier.NewObfuscatorPool(priv.Public(), poolWorkers, 8*poolWorkers, nil)
	}
	return d
}

// EnableFastObfuscation derives the DJN obfuscation base h = r₀^n mod n²
// and switches every encryption path — pooled or not — to short-exponent
// h^x obfuscators. Call it during session setup, before concurrent use;
// the obfuscator pool, if any, is restarted so its workers produce the
// cheap terms. ObfuscationBase then returns the base to ship to passive
// parties. Idempotent.
func (d *PaillierDecryptor) EnableFastObfuscation() error {
	if d.pk.FastObfuscation() {
		return nil
	}
	// Stop (and join) the pool workers before toggling pk.fast: workers
	// read the fast-obfuscator pointer on every draw, so flipping it under
	// a live pool is a data race. Close blocks until the workers exit.
	if d.pool != nil {
		d.pool.Close()
	}
	err := d.pk.EnableFastObfuscation(rand.Reader, 0)
	if d.pool != nil {
		// Restart the pool either way — on error the key stays in its
		// previous (baseline) mode and encryption must keep working.
		d.pool = paillier.NewObfuscatorPool(d.pk, d.poolWorkers, 8*d.poolWorkers, nil)
	}
	return err
}

// DisableFastObfuscation reverts to baseline r^n obfuscation (and flushes
// the pool's precomputed fast terms), so one key can serve both a fast and
// an exact-paper baseline session.
func (d *PaillierDecryptor) DisableFastObfuscation() {
	if !d.pk.FastObfuscation() {
		return
	}
	// Same ordering as EnableFastObfuscation: join the workers first so
	// none of them reads pk.fast while it is being cleared.
	if d.pool != nil {
		d.pool.Close()
	}
	d.pk.DisableFastObfuscation()
	if d.pool != nil {
		d.pool = paillier.NewObfuscatorPool(d.pk, d.poolWorkers, 8*d.poolWorkers, nil)
	}
}

// SetObfuscationBase installs a base received at session setup, enabling
// fast obfuscation on a passive party's encrypt-only scheme. expBits <= 0
// selects the default short-exponent length.
func (s *PaillierScheme) SetObfuscationBase(h *big.Int, expBits int) error {
	return s.pk.SetObfuscationBase(h, expBits)
}

// ObfuscationBase returns the fast-obfuscation base, or nil when the
// baseline r^n path is active.
func (s *PaillierScheme) ObfuscationBase() *big.Int { return s.pk.ObfuscationBase() }

// ObfuscationBits returns the short-exponent length in bits, or 0 when
// fast obfuscation is disabled.
func (s *PaillierScheme) ObfuscationBits() int { return s.pk.ObfuscationBits() }

// PublicScheme returns the encrypt-only view that is shared with passive
// parties.
func (d *PaillierDecryptor) PublicScheme() *PaillierScheme { return &d.PaillierScheme }

// Close releases the obfuscator pool, if any.
func (d *PaillierDecryptor) Close() {
	if d.pool != nil {
		d.pool.Close()
		d.pool = nil
	}
}

func (s *PaillierScheme) Name() string { return "paillier" }
func (s *PaillierScheme) N() *big.Int  { return s.pk.N }
func (s *PaillierScheme) Bits() int    { return s.pk.Bits() }

// HalfN returns the precomputed n/2 threshold used by Signed.
func (s *PaillierScheme) HalfN() *big.Int {
	if s.half != nil {
		return s.half
	}
	return new(big.Int).Rsh(s.pk.N, 1)
}

func (s *PaillierScheme) Encrypt(m *big.Int) (Ciphertext, error) {
	if s.pool != nil {
		rn, err := s.pool.Next()
		if err != nil {
			return nil, err
		}
		return paillierCt{s.pk.EncryptWithObfuscator(m, rn)}, nil
	}
	ct, err := s.pk.Encrypt(rand.Reader, m)
	if err != nil {
		return nil, err
	}
	return paillierCt{ct}, nil
}

func (s *PaillierScheme) EncryptZero() Ciphertext {
	return paillierCt{s.pk.EncryptZero()}
}

func (s *PaillierScheme) Add(a, b Ciphertext) Ciphertext {
	return paillierCt{s.pk.Add(a.(paillierCt).ct, b.(paillierCt).ct)}
}

func (s *PaillierScheme) AddInto(dst, b Ciphertext) Ciphertext {
	d := dst.(paillierCt)
	s.pk.AddInto(&d.ct, b.(paillierCt).ct)
	return d
}

func (s *PaillierScheme) Sub(a, b Ciphertext) (Ciphertext, error) {
	ct, err := s.pk.Sub(a.(paillierCt).ct, b.(paillierCt).ct)
	if err != nil {
		return nil, err
	}
	return paillierCt{ct}, nil
}

func (s *PaillierScheme) MulScalar(a Ciphertext, k *big.Int) Ciphertext {
	ct, err := s.pk.MulScalar(a.(paillierCt).ct, k)
	if err != nil {
		// Unreachable for scheme-produced ciphertexts: Encrypt outputs
		// and Unmarshal inputs are both range-validated. Failing here is
		// caller misuse on par with mixing ciphertexts across schemes,
		// which the type assertion above already treats as a panic.
		panic(err)
	}
	return paillierCt{ct}
}

func (s *PaillierScheme) Marshal(ct Ciphertext) []byte {
	return ct.(paillierCt).ct.Bytes()
}

// Unmarshal rejects byte strings that do not decode to an element of
// (0, n²). This is the validation gate for every ciphertext arriving from
// the wire: downstream homomorphic operations and decryption may assume
// range-valid inputs because nothing out of range gets past here.
func (s *PaillierScheme) Unmarshal(b []byte) (Ciphertext, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("he: empty paillier ciphertext")
	}
	ct := paillier.CiphertextFromBytes(b)
	if err := s.pk.ValidateCiphertext(ct); err != nil {
		return nil, fmt.Errorf("he: %w", err)
	}
	return paillierCt{ct}, nil
}

func (s *PaillierScheme) CiphertextBytes() int { return 2 * s.pk.Bits() / 8 }

func (d *PaillierDecryptor) Decrypt(ct Ciphertext) (*big.Int, error) {
	return d.priv.Decrypt(ct.(paillierCt).ct)
}

var (
	_ Scheme    = (*PaillierScheme)(nil)
	_ Decryptor = (*PaillierDecryptor)(nil)
)
