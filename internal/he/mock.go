package he

import (
	"fmt"
	"math/big"
)

// mockCt carries a plaintext residue through the protocol unmodified.
type mockCt struct {
	v *big.Int
}

func (mockCt) isCiphertext() {}

// MockScheme implements Scheme with no cryptography at all: "ciphertexts"
// are the plaintexts themselves and every operation is ordinary modular
// arithmetic. It reproduces the paper's VF-MOCK baseline, which isolates
// the cost of the federated protocol from the cost of the cryptosystem.
//
// MockScheme is NOT private: it must never be used outside benchmarking.
type MockScheme struct {
	n    *big.Int
	bits int
	half *big.Int
}

// NewMock creates a mock scheme whose plaintext space is [0, 2^bits).
// A power-of-two modulus keeps serialized values small while preserving
// the wrap-around semantics the encoders rely on.
func NewMock(bits int) *MockScheme {
	if bits < 64 {
		bits = 64
	}
	n := new(big.Int).Lsh(big.NewInt(1), uint(bits))
	return &MockScheme{
		n:    n,
		bits: bits,
		half: new(big.Int).Rsh(n, 1),
	}
}

func (s *MockScheme) Name() string { return "mock" }
func (s *MockScheme) N() *big.Int  { return s.n }
func (s *MockScheme) Bits() int    { return s.bits }

// HalfN returns the precomputed n/2 threshold used by Signed.
func (s *MockScheme) HalfN() *big.Int { return s.half }

func (s *MockScheme) Encrypt(m *big.Int) (Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(s.n) >= 0 {
		return nil, fmt.Errorf("he: mock plaintext out of range")
	}
	return mockCt{new(big.Int).Set(m)}, nil
}

func (s *MockScheme) EncryptZero() Ciphertext { return mockCt{new(big.Int)} }

func (s *MockScheme) Add(a, b Ciphertext) Ciphertext {
	v := new(big.Int).Add(a.(mockCt).v, b.(mockCt).v)
	v.Mod(v, s.n)
	return mockCt{v}
}

func (s *MockScheme) AddInto(dst, b Ciphertext) Ciphertext {
	d := dst.(mockCt)
	d.v.Add(d.v, b.(mockCt).v)
	d.v.Mod(d.v, s.n)
	return d
}

func (s *MockScheme) Sub(a, b Ciphertext) (Ciphertext, error) {
	v := new(big.Int).Sub(a.(mockCt).v, b.(mockCt).v)
	v.Mod(v, s.n)
	return mockCt{v}, nil
}

func (s *MockScheme) MulScalar(a Ciphertext, k *big.Int) Ciphertext {
	v := new(big.Int).Mul(a.(mockCt).v, k)
	v.Mod(v, s.n)
	return mockCt{v}
}

func (s *MockScheme) Marshal(ct Ciphertext) []byte {
	return ct.(mockCt).v.Bytes()
}

func (s *MockScheme) Unmarshal(b []byte) (Ciphertext, error) {
	v := new(big.Int).SetBytes(b)
	if v.Cmp(s.n) >= 0 {
		return nil, fmt.Errorf("he: mock ciphertext out of range")
	}
	return mockCt{v}, nil
}

// CiphertextBytes reflects that VF-MOCK ships plaintext-sized values.
func (s *MockScheme) CiphertextBytes() int { return s.bits / 8 }

// Decrypt returns the carried plaintext; the mock scheme is its own
// decryptor.
func (s *MockScheme) Decrypt(ct Ciphertext) (*big.Int, error) {
	return new(big.Int).Set(ct.(mockCt).v), nil
}

var _ Decryptor = (*MockScheme)(nil)
