package he

import (
	"fmt"
	"math/big"
)

// scalarBackend lifts a scalar Scheme to a 1-slot Backend: the single
// lane is the whole plaintext space, vector operations delegate 1:1 to
// the scalar ones (same operation order, same randomness consumption), so
// a session on a lifted backend is byte-identical to one on the bare
// scheme.
type scalarBackend struct {
	Scheme
	name string
	half *big.Int
}

func newScalarBackend(s Scheme, name string) *scalarBackend {
	return &scalarBackend{Scheme: s, name: name, half: schemeHalf(s)}
}

// schemeHalf pulls the precomputed N/2 out of a scheme, computing it once
// when the scheme predates the halfer interface.
func schemeHalf(s Scheme) *big.Int {
	if h, ok := s.(halfer); ok {
		return h.HalfN()
	}
	return new(big.Int).Rsh(s.N(), 1)
}

func (b *scalarBackend) BackendName() string { return b.name }
func (b *scalarBackend) Slots() int          { return 1 }
func (b *scalarBackend) LaneBits() int       { return b.Scheme.Bits() }
func (b *scalarBackend) Headroom() int       { return 0 }
func (b *scalarBackend) Base() Scheme        { return b.Scheme }
func (b *scalarBackend) HalfN() *big.Int     { return b.half }

func (b *scalarBackend) EncryptVec(lanes []*big.Int) (VecCiphertext, error) {
	if len(lanes) != 1 {
		return nil, fmt.Errorf("he: backend %s has 1 slot, got %d lanes", b.name, len(lanes))
	}
	if lanes[0] == nil || lanes[0].Sign() < 0 {
		return nil, fmt.Errorf("he: backend %s: lane value must be non-negative", b.name)
	}
	ct, err := b.Scheme.Encrypt(lanes[0])
	if err != nil {
		return nil, err
	}
	return vecCt{ct}, nil
}

func (b *scalarBackend) EncryptZeroVec() VecCiphertext {
	return vecCt{b.Scheme.EncryptZero()}
}

func (b *scalarBackend) AddVec(a, c VecCiphertext) VecCiphertext {
	return vecCt{b.Scheme.Add(a.(vecCt).ct, c.(vecCt).ct)}
}

func (b *scalarBackend) AddVecInto(dst, c VecCiphertext) VecCiphertext {
	return vecCt{b.Scheme.AddInto(dst.(vecCt).ct, c.(vecCt).ct)}
}

func (b *scalarBackend) SubVec(a, c VecCiphertext) (VecCiphertext, error) {
	ct, err := b.Scheme.Sub(a.(vecCt).ct, c.(vecCt).ct)
	if err != nil {
		return nil, err
	}
	return vecCt{ct}, nil
}

func (b *scalarBackend) MarshalVec(v VecCiphertext) []byte {
	return b.Scheme.Marshal(v.(vecCt).ct)
}

func (b *scalarBackend) UnmarshalVec(p []byte) (VecCiphertext, error) {
	ct, err := b.Scheme.Unmarshal(p)
	if err != nil {
		return nil, err
	}
	return vecCt{ct}, nil
}

func (b *scalarBackend) VecCiphertextBytes() int { return b.Scheme.CiphertextBytes() }

// scalarDecBackend is the private side of a lifted scalar scheme. Base()
// returns the concrete decryptor (not the embedded Scheme view of it) so
// capability probes — EnableFastObfuscation, pool Close — find it by
// unwrapping one layer.
type scalarDecBackend struct {
	scalarBackend
	dec Decryptor
}

func newScalarDecBackend(d Decryptor, name string) *scalarDecBackend {
	return &scalarDecBackend{scalarBackend: *newScalarBackend(publicSide(d), name), dec: d}
}

// publicSide narrows a decryptor to its encrypt-only scheme where the
// implementation distinguishes the two (Paillier), so the lifted
// backend's scalar operations match a passive party's bit-for-bit.
func publicSide(d Decryptor) Scheme {
	if p, ok := d.(interface{ PublicScheme() *PaillierScheme }); ok {
		return p.PublicScheme()
	}
	return d
}

func (b *scalarDecBackend) Base() Scheme { return b.dec }

func (b *scalarDecBackend) Decrypt(ct Ciphertext) (*big.Int, error) {
	return b.dec.Decrypt(ct)
}

func (b *scalarDecBackend) DecryptVec(v VecCiphertext) ([]*big.Int, error) {
	m, err := b.dec.Decrypt(v.(vecCt).ct)
	if err != nil {
		return nil, err
	}
	return []*big.Int{m}, nil
}

// Close releases resources held by the wrapped decryptor (the Paillier
// obfuscator pool).
func (b *scalarDecBackend) Close() {
	if c, ok := b.dec.(interface{ Close() }); ok {
		c.Close()
	}
}

var (
	_ Backend      = (*scalarBackend)(nil)
	_ VecDecryptor = (*scalarDecBackend)(nil)
)
