package he

import (
	"math/big"
	"testing"
)

// schemes under test: every Scheme must satisfy the same contract so the
// protocol code can swap them freely.
func testSchemes(t *testing.T) map[string]Decryptor {
	t.Helper()
	p, err := NewPaillier(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return map[string]Decryptor{
		"paillier": p,
		"mock":     NewMock(256),
	}
}

func TestSchemeContract(t *testing.T) {
	for name, s := range testSchemes(t) {
		t.Run(name, func(t *testing.T) {
			if s.Name() == "" {
				t.Error("empty scheme name")
			}
			if s.Bits() < 256 {
				t.Errorf("Bits = %d, want >= 256", s.Bits())
			}
			if s.CiphertextBytes() <= 0 {
				t.Error("CiphertextBytes must be positive")
			}

			a, err := s.Encrypt(big.NewInt(17))
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.Encrypt(big.NewInt(25))
			if err != nil {
				t.Fatal(err)
			}

			sum, err := s.Decrypt(s.Add(a, b))
			if err != nil {
				t.Fatal(err)
			}
			if sum.Int64() != 42 {
				t.Errorf("Add: %v, want 42", sum)
			}

			diff, err := s.Decrypt(s.Sub(b, a))
			if err != nil {
				t.Fatal(err)
			}
			if diff.Int64() != 8 {
				t.Errorf("Sub: %v, want 8", diff)
			}

			prod, err := s.Decrypt(s.MulScalar(a, big.NewInt(3)))
			if err != nil {
				t.Fatal(err)
			}
			if prod.Int64() != 51 {
				t.Errorf("MulScalar: %v, want 51", prod)
			}

			zero, err := s.Decrypt(s.EncryptZero())
			if err != nil {
				t.Fatal(err)
			}
			if zero.Sign() != 0 {
				t.Errorf("EncryptZero decrypts to %v", zero)
			}

			acc := s.EncryptZero()
			for i := 1; i <= 5; i++ {
				ct, err := s.Encrypt(big.NewInt(int64(i)))
				if err != nil {
					t.Fatal(err)
				}
				acc = s.AddInto(acc, ct)
			}
			accV, err := s.Decrypt(acc)
			if err != nil {
				t.Fatal(err)
			}
			if accV.Int64() != 15 {
				t.Errorf("AddInto chain: %v, want 15", accV)
			}

			wire := s.Marshal(b)
			back, err := s.Unmarshal(wire)
			if err != nil {
				t.Fatal(err)
			}
			v, err := s.Decrypt(back)
			if err != nil {
				t.Fatal(err)
			}
			if v.Int64() != 25 {
				t.Errorf("Marshal round trip: %v, want 25", v)
			}
		})
	}
}

func TestSignedHelper(t *testing.T) {
	m := NewMock(64)
	neg := new(big.Int).Sub(m.N(), big.NewInt(7))
	if got := Signed(m, neg); got.Int64() != -7 {
		t.Errorf("Signed(N-7) = %v, want -7", got)
	}
	if got := Signed(m, big.NewInt(7)); got.Int64() != 7 {
		t.Errorf("Signed(7) = %v, want 7", got)
	}
}

func TestMockRejectsOutOfRange(t *testing.T) {
	m := NewMock(64)
	if _, err := m.Encrypt(big.NewInt(-1)); err == nil {
		t.Error("Encrypt(-1) succeeded")
	}
	if _, err := m.Encrypt(m.N()); err == nil {
		t.Error("Encrypt(N) succeeded")
	}
}

func TestPaillierUnmarshalEmpty(t *testing.T) {
	p, err := NewPaillier(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Unmarshal(nil); err == nil {
		t.Error("Unmarshal(nil) succeeded, want error")
	}
}

func TestPaillierPooledEncryption(t *testing.T) {
	p, err := NewPaillier(256, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 5; i++ {
		ct, err := p.Encrypt(big.NewInt(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		v, err := p.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if v.Int64() != int64(i) {
			t.Errorf("pooled encrypt %d decrypts to %v", i, v)
		}
	}
}
