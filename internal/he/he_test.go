package he

import (
	"math/big"
	"testing"

	"vf2boost/internal/paillier"
)

// schemes under test: every Scheme must satisfy the same contract so the
// protocol code can swap them freely.
func testSchemes(t *testing.T) map[string]Decryptor {
	t.Helper()
	p, err := NewPaillier(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return map[string]Decryptor{
		"paillier": p,
		"mock":     NewMock(256),
	}
}

func TestSchemeContract(t *testing.T) {
	for name, s := range testSchemes(t) {
		t.Run(name, func(t *testing.T) {
			if s.Name() == "" {
				t.Error("empty scheme name")
			}
			if s.Bits() < 256 {
				t.Errorf("Bits = %d, want >= 256", s.Bits())
			}
			if s.CiphertextBytes() <= 0 {
				t.Error("CiphertextBytes must be positive")
			}

			a, err := s.Encrypt(big.NewInt(17))
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.Encrypt(big.NewInt(25))
			if err != nil {
				t.Fatal(err)
			}

			sum, err := s.Decrypt(s.Add(a, b))
			if err != nil {
				t.Fatal(err)
			}
			if sum.Int64() != 42 {
				t.Errorf("Add: %v, want 42", sum)
			}

			subCt, err := s.Sub(b, a)
			if err != nil {
				t.Fatal(err)
			}
			diff, err := s.Decrypt(subCt)
			if err != nil {
				t.Fatal(err)
			}
			if diff.Int64() != 8 {
				t.Errorf("Sub: %v, want 8", diff)
			}

			prod, err := s.Decrypt(s.MulScalar(a, big.NewInt(3)))
			if err != nil {
				t.Fatal(err)
			}
			if prod.Int64() != 51 {
				t.Errorf("MulScalar: %v, want 51", prod)
			}

			zero, err := s.Decrypt(s.EncryptZero())
			if err != nil {
				t.Fatal(err)
			}
			if zero.Sign() != 0 {
				t.Errorf("EncryptZero decrypts to %v", zero)
			}

			acc := s.EncryptZero()
			for i := 1; i <= 5; i++ {
				ct, err := s.Encrypt(big.NewInt(int64(i)))
				if err != nil {
					t.Fatal(err)
				}
				acc = s.AddInto(acc, ct)
			}
			accV, err := s.Decrypt(acc)
			if err != nil {
				t.Fatal(err)
			}
			if accV.Int64() != 15 {
				t.Errorf("AddInto chain: %v, want 15", accV)
			}

			wire := s.Marshal(b)
			back, err := s.Unmarshal(wire)
			if err != nil {
				t.Fatal(err)
			}
			v, err := s.Decrypt(back)
			if err != nil {
				t.Fatal(err)
			}
			if v.Int64() != 25 {
				t.Errorf("Marshal round trip: %v, want 25", v)
			}
		})
	}
}

func TestSignedHelper(t *testing.T) {
	m := NewMock(64)
	neg := new(big.Int).Sub(m.N(), big.NewInt(7))
	if got := Signed(m, neg); got.Int64() != -7 {
		t.Errorf("Signed(N-7) = %v, want -7", got)
	}
	if got := Signed(m, big.NewInt(7)); got.Int64() != 7 {
		t.Errorf("Signed(7) = %v, want 7", got)
	}
}

func TestMockRejectsOutOfRange(t *testing.T) {
	m := NewMock(64)
	if _, err := m.Encrypt(big.NewInt(-1)); err == nil {
		t.Error("Encrypt(-1) succeeded")
	}
	if _, err := m.Encrypt(m.N()); err == nil {
		t.Error("Encrypt(N) succeeded")
	}
}

func TestPaillierUnmarshalEmpty(t *testing.T) {
	p, err := NewPaillier(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Unmarshal(nil); err == nil {
		t.Error("Unmarshal(nil) succeeded, want error")
	}
}

func TestPaillierPooledEncryption(t *testing.T) {
	p, err := NewPaillier(256, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 5; i++ {
		ct, err := p.Encrypt(big.NewInt(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		v, err := p.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if v.Int64() != int64(i) {
			t.Errorf("pooled encrypt %d decrypts to %v", i, v)
		}
	}
}

// TestPaillierUnmarshalRejectsOutOfRange: Unmarshal is the validation gate
// for ciphertexts arriving from the wire, so anything outside (0, n²) must
// be rejected here rather than panic downstream.
func TestPaillierUnmarshalRejectsOutOfRange(t *testing.T) {
	p, err := NewPaillier(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	n2 := new(big.Int).Mul(p.N(), p.N())
	bad := [][]byte{
		{0},        // zero
		n2.Bytes(), // == n²
		new(big.Int).Add(n2, big.NewInt(7)).Bytes(), // > n²
	}
	for i, raw := range bad {
		if _, err := p.Unmarshal(raw); err == nil {
			t.Errorf("case %d: Unmarshal accepted out-of-range ciphertext", i)
		}
	}
	ct, err := p.Encrypt(big.NewInt(99))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Unmarshal(p.Marshal(ct)); err != nil {
		t.Errorf("Unmarshal rejected a genuine ciphertext: %v", err)
	}
}

// TestPaillierFastObfuscationRoundTrip exercises the decryptor-side enable
// path — with and without a pool — plus the passive-party install via
// SetObfuscationBase, and the disable path back to baseline.
func TestPaillierFastObfuscationRoundTrip(t *testing.T) {
	for _, workers := range []int{0, 2} {
		p, err := NewPaillier(256, workers)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		if err := p.EnableFastObfuscation(); err != nil {
			t.Fatal(err)
		}
		if p.ObfuscationBase() == nil || p.ObfuscationBits() <= 0 {
			t.Fatal("fast obfuscation not reported after enable")
		}
		for i := int64(0); i < 5; i++ {
			ct, err := p.Encrypt(big.NewInt(i))
			if err != nil {
				t.Fatalf("workers=%d Encrypt(%d): %v", workers, i, err)
			}
			if v, err := p.Decrypt(ct); err != nil || v.Int64() != i {
				t.Fatalf("workers=%d round trip %d = %v, %v", workers, i, v, err)
			}
		}

		// Passive party installs the shipped base and its ciphertexts stay
		// decryptable by the key owner.
		passive := NewPaillierPublic(paillier.NewPublicKey(p.N()))
		if err := passive.SetObfuscationBase(p.ObfuscationBase(), p.ObfuscationBits()); err != nil {
			t.Fatal(err)
		}
		ct, err := passive.Encrypt(big.NewInt(31))
		if err != nil {
			t.Fatal(err)
		}
		if v, err := p.Decrypt(ct); err != nil || v.Int64() != 31 {
			t.Fatalf("passive fast ciphertext = %v, %v; want 31", v, err)
		}

		p.DisableFastObfuscation()
		if p.ObfuscationBase() != nil {
			t.Fatal("base still reported after disable")
		}
		ct2, err := p.Encrypt(big.NewInt(8))
		if err != nil {
			t.Fatal(err)
		}
		if v, err := p.Decrypt(ct2); err != nil || v.Int64() != 8 {
			t.Fatalf("baseline round trip after disable = %v, %v; want 8", v, err)
		}
	}
}
