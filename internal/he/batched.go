package he

import (
	"fmt"
	"math/big"
)

// batchedBackend is the BatchCrypt-style lane-packed backend: Slots lane
// values are packed little-endian into one plaintext of the base scheme
// (lane i at bit offset i·LaneBits), so one Encrypt carries Slots values
// and one homomorphic Add sums all lanes at once. EncryptVec bounds every
// lane to LaneBits−Headroom bits, so up to 2^Headroom ciphertexts
// accumulate before any lane could carry into its neighbour; DecryptVec
// rejects plaintexts that overflow the lane layout.
type batchedBackend struct {
	Scheme
	name     string
	slots    int
	laneBits int
	headroom int
	half     *big.Int
	laneMask *big.Int // 2^laneBits − 1
}

// NewBatched wraps a scalar scheme as a lane-packed backend. The packed
// plaintext must stay strictly below the modulus for every reachable
// accumulator value, so slots·laneBits is capped at Bits−1 (the modulus
// has its top bit set, so 2^(Bits−1) ≤ N).
func NewBatched(s Scheme, name string, slots, laneBits, headroom int) (Backend, error) {
	if slots < 1 {
		return nil, fmt.Errorf("he: backend %s: slots must be >= 1, got %d", name, slots)
	}
	if headroom < 0 || laneBits <= headroom {
		return nil, fmt.Errorf("he: backend %s: need laneBits > headroom >= 0, got laneBits=%d headroom=%d",
			name, laneBits, headroom)
	}
	if slots*laneBits > s.Bits()-1 {
		return nil, fmt.Errorf("he: backend %s: %d lanes of %d bits exceed the %d-bit plaintext space",
			name, slots, laneBits, s.Bits())
	}
	mask := new(big.Int).Lsh(big.NewInt(1), uint(laneBits))
	mask.Sub(mask, big.NewInt(1))
	return &batchedBackend{
		Scheme:   s,
		name:     name,
		slots:    slots,
		laneBits: laneBits,
		headroom: headroom,
		half:     schemeHalf(s),
		laneMask: mask,
	}, nil
}

func (b *batchedBackend) BackendName() string { return b.name }
func (b *batchedBackend) Slots() int          { return b.slots }
func (b *batchedBackend) LaneBits() int       { return b.laneBits }
func (b *batchedBackend) Headroom() int       { return b.headroom }
func (b *batchedBackend) Base() Scheme        { return b.Scheme }
func (b *batchedBackend) HalfN() *big.Int     { return b.half }

func (b *batchedBackend) EncryptVec(lanes []*big.Int) (VecCiphertext, error) {
	if len(lanes) < 1 || len(lanes) > b.slots {
		return nil, fmt.Errorf("he: backend %s: got %d lanes, capacity %d", b.name, len(lanes), b.slots)
	}
	m := new(big.Int)
	for i := len(lanes) - 1; i >= 0; i-- {
		v := lanes[i]
		if v == nil || v.Sign() < 0 {
			return nil, fmt.Errorf("he: backend %s: lane %d must be non-negative", b.name, i)
		}
		if v.BitLen() > b.laneBits-b.headroom {
			return nil, fmt.Errorf("he: backend %s: lane %d value is %d bits, max %d (%d-bit lane, %d headroom)",
				b.name, i, v.BitLen(), b.laneBits-b.headroom, b.laneBits, b.headroom)
		}
		m.Lsh(m, uint(b.laneBits))
		m.Or(m, v)
	}
	ct, err := b.Scheme.Encrypt(m)
	if err != nil {
		return nil, err
	}
	return vecCt{ct}, nil
}

func (b *batchedBackend) EncryptZeroVec() VecCiphertext {
	return vecCt{b.Scheme.EncryptZero()}
}

func (b *batchedBackend) AddVec(a, c VecCiphertext) VecCiphertext {
	return vecCt{b.Scheme.Add(a.(vecCt).ct, c.(vecCt).ct)}
}

func (b *batchedBackend) AddVecInto(dst, c VecCiphertext) VecCiphertext {
	return vecCt{b.Scheme.AddInto(dst.(vecCt).ct, c.(vecCt).ct)}
}

func (b *batchedBackend) SubVec(a, c VecCiphertext) (VecCiphertext, error) {
	ct, err := b.Scheme.Sub(a.(vecCt).ct, c.(vecCt).ct)
	if err != nil {
		return nil, err
	}
	return vecCt{ct}, nil
}

func (b *batchedBackend) MarshalVec(v VecCiphertext) []byte {
	return b.Scheme.Marshal(v.(vecCt).ct)
}

func (b *batchedBackend) UnmarshalVec(p []byte) (VecCiphertext, error) {
	ct, err := b.Scheme.Unmarshal(p)
	if err != nil {
		return nil, err
	}
	return vecCt{ct}, nil
}

func (b *batchedBackend) VecCiphertextBytes() int { return b.Scheme.CiphertextBytes() }

// batchedDecryptor is the private side of the lane-packed backend.
type batchedDecryptor struct {
	batchedBackend
	dec Decryptor
}

// NewBatchedDecryptor wraps a decryptor as a lane-packed backend with the
// same geometry rules as NewBatched. The decryptor itself backs the
// encrypting operations, so Party B's batched encryptions keep the pooled
// obfuscator path a bare Paillier public scheme lacks.
func NewBatchedDecryptor(d Decryptor, name string, slots, laneBits, headroom int) (VecDecryptor, error) {
	b, err := NewBatched(d, name, slots, laneBits, headroom)
	if err != nil {
		return nil, err
	}
	return &batchedDecryptor{batchedBackend: *b.(*batchedBackend), dec: d}, nil
}

func (d *batchedDecryptor) Base() Scheme { return d.dec }

func (d *batchedDecryptor) Decrypt(ct Ciphertext) (*big.Int, error) {
	return d.dec.Decrypt(ct)
}

func (d *batchedDecryptor) DecryptVec(v VecCiphertext) ([]*big.Int, error) {
	m, err := d.dec.Decrypt(v.(vecCt).ct)
	if err != nil {
		return nil, err
	}
	if m.BitLen() > d.slots*d.laneBits {
		return nil, fmt.Errorf("he: backend %s: decrypted plaintext is %d bits, lane layout holds %d — accumulator overflow or hostile ciphertext",
			d.name, m.BitLen(), d.slots*d.laneBits)
	}
	lanes := make([]*big.Int, d.slots)
	rest := new(big.Int).Set(m)
	for i := range lanes {
		lanes[i] = new(big.Int).And(rest, d.laneMask)
		rest.Rsh(rest, uint(d.laneBits))
	}
	return lanes, nil
}

// Close releases resources held by the wrapped decryptor.
func (d *batchedDecryptor) Close() {
	if c, ok := d.dec.(interface{ Close() }); ok {
		c.Close()
	}
}

var (
	_ Backend      = (*batchedBackend)(nil)
	_ VecDecryptor = (*batchedDecryptor)(nil)
)
