package he

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
	"sync"

	"vf2boost/internal/paillier"
)

// This file defines the slot-aware backend layer on top of the scalar
// Scheme interface: a vector ciphertext type, the Backend/VecDecryptor
// interfaces, and a named-backend registry so the protocol can negotiate
// an implementation by name at session setup.
//
// The slot model: a Backend exposes Slots() lanes, each LaneBits() wide,
// laid out little-endian inside one plaintext (lane i occupies bits
// [i·LaneBits, (i+1)·LaneBits)). Lane values are non-negative and bounded
// to LaneBits()−Headroom() bits at encryption time; the headroom absorbs
// homomorphic additions, so up to 2^Headroom ciphertexts can be summed
// into an accumulator before a lane could carry into its neighbour.
// Scalar schemes lift to 1-slot backends whose single lane is the whole
// plaintext space.

// VecCiphertext is an opaque vector-ciphertext handle produced by a
// Backend. Values from different backends must not be mixed.
type VecCiphertext interface {
	isVecCiphertext()
}

// vecCt is the shared vector-ciphertext wrapper: every in-tree backend
// packs its lanes into a single scalar ciphertext of the base scheme.
type vecCt struct {
	ct Ciphertext
}

func (vecCt) isVecCiphertext() {}

// Backend is the public (encrypting) side of a slot-aware homomorphic
// backend. It embeds the scalar Scheme — every backend can still encrypt
// one plaintext at a time — and adds the vector operations plus the lane
// geometry metadata the protocol negotiates. Implementations are safe for
// concurrent use.
type Backend interface {
	Scheme
	// BackendName is the registry name ("paillier-batched"), as opposed
	// to Name(), which stays the underlying scheme family.
	BackendName() string
	// Slots is the number of lanes per vector ciphertext (1 for lifted
	// scalar schemes).
	Slots() int
	// LaneBits is the width of one lane in bits.
	LaneBits() int
	// Headroom is the number of high bits of each lane reserved for
	// accumulation: EncryptVec rejects lane values wider than
	// LaneBits−Headroom, so 2^Headroom such values sum without carrying
	// into the next lane.
	Headroom() int
	// Base returns the wrapped scheme (or decryptor) one layer down;
	// capability probes (fast obfuscation, pooling) unwrap through it.
	Base() Scheme
	// EncryptVec encrypts 1..Slots lane values, each non-negative and at
	// most LaneBits−Headroom bits wide; lane i of the result holds
	// lanes[i], missing trailing lanes are zero.
	EncryptVec(lanes []*big.Int) (VecCiphertext, error)
	// EncryptZeroVec returns the additive identity vector (all lanes 0).
	EncryptZeroVec() VecCiphertext
	// AddVec returns a fresh lane-wise sum.
	AddVec(a, b VecCiphertext) VecCiphertext
	// AddVecInto accumulates b into dst lane-wise in place where
	// supported; callers must use the return value.
	AddVecInto(dst, b VecCiphertext) VecCiphertext
	// SubVec returns the lane-wise difference a−b. Like the scalar Sub it
	// can fail on hostile (range-valid but non-invertible) input. Lanes
	// only stay meaningful when every lane of a is at least the matching
	// lane of b — the histogram-subtraction invariant.
	SubVec(a, b VecCiphertext) (VecCiphertext, error)
	// MarshalVec serializes a vector ciphertext for cross-party transfer.
	MarshalVec(v VecCiphertext) []byte
	// UnmarshalVec reverses MarshalVec, validating range like Unmarshal.
	UnmarshalVec(b []byte) (VecCiphertext, error)
	// VecCiphertextBytes is the serialized size of one vector ciphertext,
	// used by the WAN shaper for transfer accounting.
	VecCiphertextBytes() int
}

// VecDecryptor is the private side of a backend, held only by Party B.
type VecDecryptor interface {
	Backend
	// Decrypt recovers a scalar plaintext in [0, N).
	Decrypt(ct Ciphertext) (*big.Int, error)
	// DecryptVec recovers all Slots lane values (non-negative, each below
	// 2^LaneBits). It fails if the decrypted plaintext overflows the lane
	// layout — the overflow-detection gate for accumulator misuse.
	DecryptVec(v VecCiphertext) ([]*big.Int, error)
}

// Params carries everything a backend factory may need. Public-side
// factories consume the negotiated key material (N, ObfBase); decryptor
// factories generate keys from Bits. Batched backends additionally need
// the lane geometry, which the session negotiates in MsgSetup.
type Params struct {
	// Bits is the modulus size for key generation (decryptor side) or the
	// mock width (both sides).
	Bits int
	// PoolWorkers configures the Paillier obfuscator pool (decryptor side).
	PoolWorkers int
	// N is the public modulus received at session setup (public side).
	N *big.Int
	// ObfBase/ObfBits install a DJN fast-obfuscation base on a Paillier
	// public scheme (public side; nil base selects baseline obfuscation).
	ObfBase *big.Int
	ObfBits int
	// Slots/LaneBits/Headroom are the lane geometry for batched backends.
	Slots    int
	LaneBits int
	Headroom int
}

type backendEntry struct {
	family  string
	batched bool
	public  func(Params) (Backend, error)
	decrypt func(Params) (VecDecryptor, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]backendEntry{}
)

// Register adds a named backend to the registry. family names the scalar
// scheme the backend is built on ("paillier" or "mock"), which the config
// layer uses for key-size and privacy validation; batched marks backends
// with more than one slot. Duplicate names panic — registration is an
// init-time programming act, not a runtime input.
func Register(name, family string, batched bool,
	public func(Params) (Backend, error),
	decrypt func(Params) (VecDecryptor, error)) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("he: duplicate backend registration: " + name)
	}
	registry[name] = backendEntry{family: family, batched: batched, public: public, decrypt: decrypt}
}

// Registered reports whether a backend name is known.
func Registered(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names lists the registered backend names in sorted order, for error
// messages and CLI help.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Family returns the scalar scheme family a backend is built on, or ""
// for unknown names.
func Family(name string) string {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[name].family
}

// Batched reports whether a backend packs more than one slot per
// ciphertext (false for unknown names).
func Batched(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[name].batched
}

func lookup(name string) (backendEntry, error) {
	regMu.RLock()
	e, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return backendEntry{}, fmt.Errorf("he: unknown backend %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return e, nil
}

// Open builds the public (encrypting) side of a named backend from the
// negotiated parameters. Unknown names fail with the registered list.
func Open(name string, p Params) (Backend, error) {
	e, err := lookup(name)
	if err != nil {
		return nil, err
	}
	return e.public(p)
}

// OpenDecryptor builds the private side of a named backend, generating
// key material as needed.
func OpenDecryptor(name string, p Params) (VecDecryptor, error) {
	e, err := lookup(name)
	if err != nil {
		return nil, err
	}
	return e.decrypt(p)
}

// paillierPublicFromParams builds the encrypt-only Paillier scheme from
// negotiated key material, installing the fast-obfuscation base when one
// was shipped. This is the one place scheme-specific setup lives; the
// protocol's setup handler just calls Open.
func paillierPublicFromParams(p Params) (*PaillierScheme, error) {
	if p.N == nil || p.N.Sign() <= 0 {
		return nil, fmt.Errorf("he: paillier public backend needs the modulus N")
	}
	s := NewPaillierPublic(paillier.NewPublicKey(p.N))
	if p.ObfBase != nil && p.ObfBase.Sign() > 0 {
		if err := s.SetObfuscationBase(p.ObfBase, p.ObfBits); err != nil {
			return nil, fmt.Errorf("he: installing obfuscation base: %w", err)
		}
	}
	return s, nil
}

func init() {
	Register("paillier", "paillier", false,
		func(p Params) (Backend, error) {
			s, err := paillierPublicFromParams(p)
			if err != nil {
				return nil, err
			}
			return newScalarBackend(s, "paillier"), nil
		},
		func(p Params) (VecDecryptor, error) {
			d, err := NewPaillier(p.Bits, p.PoolWorkers)
			if err != nil {
				return nil, err
			}
			return newScalarDecBackend(d, "paillier"), nil
		})
	Register("mock", "mock", false,
		func(p Params) (Backend, error) {
			return newScalarBackend(NewMock(p.Bits), "mock"), nil
		},
		func(p Params) (VecDecryptor, error) {
			return newScalarDecBackend(NewMock(p.Bits), "mock"), nil
		})
	Register("paillier-batched", "paillier", true,
		func(p Params) (Backend, error) {
			s, err := paillierPublicFromParams(p)
			if err != nil {
				return nil, err
			}
			return NewBatched(s, "paillier-batched", p.Slots, p.LaneBits, p.Headroom)
		},
		func(p Params) (VecDecryptor, error) {
			d, err := NewPaillier(p.Bits, p.PoolWorkers)
			if err != nil {
				return nil, err
			}
			return NewBatchedDecryptor(d, "paillier-batched", p.Slots, p.LaneBits, p.Headroom)
		})
	Register("mock-batched", "mock", true,
		func(p Params) (Backend, error) {
			return NewBatched(NewMock(p.Bits), "mock-batched", p.Slots, p.LaneBits, p.Headroom)
		},
		func(p Params) (VecDecryptor, error) {
			return NewBatchedDecryptor(NewMock(p.Bits), "mock-batched", p.Slots, p.LaneBits, p.Headroom)
		})
}
