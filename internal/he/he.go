// Package he defines the additively homomorphic encryption interface that
// the federated GBDT protocol is written against, with two implementations:
//
//   - a real one backed by the Paillier cryptosystem (internal/paillier),
//     used by VF-GBDT and VF²Boost;
//   - a mock one that carries plaintexts through the exact same code path,
//     used by the paper's VF-MOCK baseline to isolate protocol overhead
//     from cryptography cost.
//
// Plaintexts are big integers in [0, N); callers layer fixed-point float
// encoding on top (internal/fixedpoint).
package he

import "math/big"

// Ciphertext is an opaque ciphertext handle produced by a Scheme. Values
// from different schemes must not be mixed.
type Ciphertext interface {
	isCiphertext()
}

// Scheme is the public (encrypting) side of an additively homomorphic
// cryptosystem. Implementations are safe for concurrent use.
type Scheme interface {
	// Name identifies the scheme ("paillier" or "mock").
	Name() string
	// N is the plaintext modulus; plaintexts live in [0, N).
	N() *big.Int
	// Bits is the modulus size S in bits.
	Bits() int
	// Encrypt encrypts m, which must lie in [0, N).
	Encrypt(m *big.Int) (Ciphertext, error)
	// EncryptZero returns the additive identity ciphertext. It need not
	// be obfuscated; it is only used to seed accumulators.
	EncryptZero() Ciphertext
	// Add returns a fresh ciphertext of the sum (HAdd).
	Add(a, b Ciphertext) Ciphertext
	// AddInto accumulates b into dst in place where the implementation
	// supports it, returning the accumulated ciphertext. Callers must
	// use the return value and may not rely on dst remaining valid.
	AddInto(dst, b Ciphertext) Ciphertext
	// Sub returns a ciphertext of a - b. Unlike the other homomorphic
	// operations it can fail even on range-validated inputs: a Paillier
	// subtrahend that is not invertible modulo n² has no difference, so
	// a hostile histogram must surface as an error, not a panic.
	Sub(a, b Ciphertext) (Ciphertext, error)
	// MulScalar returns a ciphertext of k·m given a ciphertext of m
	// (SMul). k may be negative.
	MulScalar(a Ciphertext, k *big.Int) Ciphertext
	// Marshal serializes a ciphertext for cross-party transfer.
	Marshal(ct Ciphertext) []byte
	// Unmarshal reverses Marshal.
	Unmarshal(b []byte) (Ciphertext, error)
	// CiphertextBytes is the serialized size of one ciphertext, used by
	// the WAN shaper to account transfer cost (2S/8 for Paillier).
	CiphertextBytes() int
}

// Decryptor is the private side of the cryptosystem, held only by the
// label-owning Party B.
type Decryptor interface {
	Scheme
	// Decrypt recovers the plaintext in [0, N).
	Decrypt(ct Ciphertext) (*big.Int, error)
}

// halfer is implemented by schemes that precompute N/2 at construction.
// Signed sits in the decrypt hot loop (every decoded histogram bin goes
// through it), so the threshold must not be reallocated per call.
type halfer interface {
	HalfN() *big.Int
}

// Signed maps a plaintext in [0, N) to its signed representative in
// (-N/2, N/2], the convention used to encode negative values. Schemes
// that expose a precomputed N/2 (all in-tree schemes do) make the
// non-negative path allocation-free.
func Signed(s Scheme, m *big.Int) *big.Int {
	var half *big.Int
	if h, ok := s.(halfer); ok {
		half = h.HalfN()
	} else {
		half = new(big.Int).Rsh(s.N(), 1)
	}
	if m.Cmp(half) > 0 {
		return new(big.Int).Sub(m, s.N())
	}
	return m
}
