// Benchmarks regenerating the paper's evaluation, one benchmark family
// per table/figure (Section 6). These run at reduced scale so the whole
// suite completes in minutes; cmd/experiments runs the fuller,
// paper-shaped sweeps and EXPERIMENTS.md records paper-vs-measured.
//
//	BenchmarkFig7*    — Figure 7  cryptography throughput
//	BenchmarkTable1*  — Table 1   root-node build: blaster + re-ordered
//	BenchmarkTable2*  — Table 2   one tree: optimistic + packing
//	BenchmarkFig10*   — Figure 10 end-to-end convergence runs
//	BenchmarkTable4*  — Table 4   per-tree time across dataset regimes
//	BenchmarkTable5*  — Table 5   worker scaling
//	BenchmarkTable6*  — Table 6   party scaling
package vf2boost

import (
	"crypto/rand"
	"fmt"
	"math/big"
	mrand "math/rand"
	"testing"
	"time"

	"vf2boost/internal/core"
	"vf2boost/internal/dataset"
	"vf2boost/internal/fixedpoint"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/he"
	"vf2boost/internal/mq"
	"vf2boost/internal/paillier"
	"vf2boost/internal/serve"
)

const benchKeyBits = 256

var benchKey *paillier.PrivateKey

func benchDecryptor(b *testing.B) *he.PaillierDecryptor {
	b.Helper()
	if benchKey == nil {
		k, err := paillier.GenerateKey(rand.Reader, benchKeyBits)
		if err != nil {
			b.Fatal(err)
		}
		benchKey = k
	}
	return he.NewPaillierFromKey(benchKey, 0)
}

// --- Figure 7: cryptography operation throughput ---------------------

func BenchmarkFig7Encrypt(b *testing.B) {
	dec := benchDecryptor(b)
	codec := fixedpoint.NewCodec(dec, fixedpoint.WithSeed(1))
	rng := mrand.New(mrand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.EncryptValue(rng.NormFloat64()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Decrypt(b *testing.B) {
	dec := benchDecryptor(b)
	codec := fixedpoint.NewCodec(dec, fixedpoint.WithSeed(1))
	e, err := codec.EncryptValue(0.375)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Decrypt(dec, e); err != nil {
			b.Fatal(err)
		}
	}
}

// fig7Ciphers precomputes mixed-exponent ciphertexts for the HAdd benches.
func fig7Ciphers(b *testing.B, codec *fixedpoint.Codec, n int) []fixedpoint.EncNum {
	b.Helper()
	rng := mrand.New(mrand.NewSource(2))
	cts := make([]fixedpoint.EncNum, n)
	for i := range cts {
		e, err := codec.EncryptValue(rng.NormFloat64())
		if err != nil {
			b.Fatal(err)
		}
		cts[i] = e
	}
	return cts
}

func BenchmarkFig7HAddNaive(b *testing.B) {
	dec := benchDecryptor(b)
	codec := fixedpoint.NewCodec(dec, fixedpoint.WithSeed(2))
	cts := fig7Ciphers(b, codec, 512)
	b.ResetTimer()
	acc := codec.EncryptZero()
	for i := 0; i < b.N; i++ {
		codec.AddEncInto(&acc, cts[i%len(cts)])
	}
}

func BenchmarkFig7HAddReordered(b *testing.B) {
	dec := benchDecryptor(b)
	codec := fixedpoint.NewCodec(dec, fixedpoint.WithSeed(2))
	cts := fig7Ciphers(b, codec, 512)
	rs := fixedpoint.NewReorderedSum(codec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Add(cts[i%len(cts)])
	}
	b.StopTimer()
	rs.Merge()
}

func BenchmarkFig7SMul(b *testing.B) {
	dec := benchDecryptor(b)
	codec := fixedpoint.NewCodec(dec, fixedpoint.WithSeed(3))
	e, err := codec.EncryptValue(1.25)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		codec.ScaleEnc(e, e.Exp+2)
	}
}

func BenchmarkFig7PackedDecrypt(b *testing.B) {
	dec := benchDecryptor(b)
	codec := fixedpoint.NewCodec(dec, fixedpoint.WithSeed(4))
	packBits := 32
	capacity := fixedpoint.PackCapacity(dec, packBits)
	cts := make([]he.Ciphertext, capacity)
	for i := range cts {
		ct, err := dec.Encrypt(big.NewInt(int64(1000 + i)))
		if err != nil {
			b.Fatal(err)
		}
		cts[i] = ct
	}
	packed, err := codec.Pack(cts, packBits)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain, err := dec.Decrypt(packed)
		if err != nil {
			b.Fatal(err)
		}
		fixedpoint.Unpack(plain, packBits, capacity)
	}
	b.ReportMetric(float64(capacity), "values/decrypt")
}

// --- shared federated-bench scaffolding ------------------------------

func benchParts(b *testing.B, n, featA, featB, nnz int, seed int64) []*dataset.Dataset {
	b.Helper()
	cols := featA + featB
	density := float64(nnz) / float64(cols)
	if density > 1 {
		density = 1
	}
	d, err := dataset.Generate(dataset.GenOptions{Rows: n, Cols: cols, Density: density, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	parts, err := d.VerticalSplit([]int{featA, featB}, 1)
	if err != nil {
		b.Fatal(err)
	}
	return parts
}

func benchTrain(b *testing.B, parts []*dataset.Dataset, cfg core.Config) *core.Stats {
	b.Helper()
	s, err := core.NewSession(parts, cfg, core.WithDecryptor(benchDecryptor(b)))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Train(); err != nil {
		b.Fatal(err)
	}
	return s.Stats()
}

// --- Table 1: root-node build -----------------------------------------

func benchTable1(b *testing.B, blaster, reordered bool) {
	parts := benchParts(b, 600, 25, 25, 25, 1)
	cfg := core.BaselineConfig()
	cfg.Trees = 1
	cfg.MaxDepth = 1
	cfg.KeyBits = benchKeyBits
	cfg.Workers = 1
	cfg.BlasterEncryption = blaster
	cfg.ReorderedAccumulation = reordered
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchTrain(b, parts, cfg)
	}
}

func BenchmarkTable1RootBaseline(b *testing.B)  { benchTable1(b, false, false) }
func BenchmarkTable1RootBlaster(b *testing.B)   { benchTable1(b, true, false) }
func BenchmarkTable1RootReordered(b *testing.B) { benchTable1(b, false, true) }
func BenchmarkTable1RootBoth(b *testing.B)      { benchTable1(b, true, true) }

// --- Table 2: one full tree -------------------------------------------

func benchTable2(b *testing.B, optimistic, packing bool) {
	parts := benchParts(b, 500, 60, 20, 16, 2)
	cfg := core.BaselineConfig()
	cfg.Trees = 1
	cfg.MaxDepth = 4
	cfg.MaxBins = 8
	cfg.KeyBits = benchKeyBits
	cfg.Workers = 1
	cfg.OptimisticSplit = optimistic
	cfg.HistogramPacking = packing
	var dirty int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := benchTrain(b, parts, cfg)
		dirty += st.DirtyNodes()
	}
	if optimistic {
		b.ReportMetric(float64(dirty)/float64(b.N), "dirty/tree")
	}
}

func BenchmarkTable2TreeBaseline(b *testing.B)   { benchTable2(b, false, false) }
func BenchmarkTable2TreeOptimSplit(b *testing.B) { benchTable2(b, true, false) }
func BenchmarkTable2TreeHistPack(b *testing.B)   { benchTable2(b, false, true) }
func BenchmarkTable2TreeBoth(b *testing.B)       { benchTable2(b, true, true) }

// --- Figure 10: end-to-end convergence runs ----------------------------

func benchFig10(b *testing.B, cfg core.Config) {
	// census-shaped: small, sparse, two similar parties.
	parts := benchParts(b, 1000, 39, 35, 13, 3)
	cfg.Trees = 3
	cfg.MaxDepth = 4
	cfg.KeyBits = benchKeyBits
	cfg.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchTrain(b, parts, cfg)
	}
}

func BenchmarkFig10VF2Boost(b *testing.B) {
	cfg := core.DefaultConfig()
	benchFig10(b, cfg)
}

func BenchmarkFig10VFGBDT(b *testing.B) {
	benchFig10(b, core.BaselineConfig())
}

func BenchmarkFig10XGBColocated(b *testing.B) {
	d, err := dataset.Generate(dataset.GenOptions{Rows: 1000, Cols: 74, Density: 13.0 / 74, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	p := gbdt.DefaultParams()
	p.NumTrees = 3
	p.MaxDepth = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gbdt.Train(d, p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 4: per-tree time across dataset regimes ---------------------

func benchTable4(b *testing.B, preset string, cfg core.Config, scheme string) {
	p, ok := dataset.PresetByName(preset)
	if !ok {
		b.Fatalf("unknown preset %s", preset)
	}
	opts, counts := p.Options(10000, 4)
	d, err := dataset.Generate(opts)
	if err != nil {
		b.Fatal(err)
	}
	parts, err := d.VerticalSplit(counts, len(counts)-1)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Trees = 1
	cfg.MaxDepth = 3
	cfg.MaxBins = 8
	cfg.KeyBits = benchKeyBits
	cfg.Workers = 1
	cfg.Scheme = scheme
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchTrain(b, parts, cfg)
	}
}

func BenchmarkTable4(b *testing.B) {
	for _, preset := range []string{"susy", "epsilon", "rcv1", "synthesis", "industry"} {
		b.Run(preset+"/VF-MOCK", func(b *testing.B) {
			benchTable4(b, preset, core.MockConfig(), core.SchemeMock)
		})
		b.Run(preset+"/VF-GBDT", func(b *testing.B) {
			benchTable4(b, preset, core.BaselineConfig(), core.SchemePaillier)
		})
		b.Run(preset+"/VF2Boost", func(b *testing.B) {
			benchTable4(b, preset, core.DefaultConfig(), core.SchemePaillier)
		})
	}
}

// --- Table 5: worker scaling -------------------------------------------

func BenchmarkTable5Workers(b *testing.B) {
	parts := benchParts(b, 800, 30, 30, 20, 5)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Trees = 1
			cfg.MaxDepth = 3
			cfg.KeyBits = benchKeyBits
			cfg.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchTrain(b, parts, cfg)
			}
		})
	}
}

// --- Online scoring throughput -----------------------------------------

// serveBenchTransport adapts a gateway producer/consumer pair to
// core.Transport for the serving benchmarks.
type serveBenchTransport struct {
	prod *mq.RemoteProducer
	cons *mq.RemoteConsumer
}

func (t serveBenchTransport) Send(b []byte) error      { return t.prod.Send(b) }
func (t serveBenchTransport) Receive() ([]byte, error) { return t.cons.Receive() }

func serveBenchDial(b *testing.B, addr, sendTopic, recvTopic string) core.Transport {
	b.Helper()
	prod, err := mq.DialProducer(addr, sendTopic, "")
	if err != nil {
		b.Fatal(err)
	}
	cons, err := mq.DialConsumer(addr, recvTopic, "")
	if err != nil {
		b.Fatal(err)
	}
	return serveBenchTransport{prod: prod, cons: cons}
}

// BenchmarkScoreBatch measures online federated scoring throughput
// (requests/sec) per micro-batch size over an in-process TCP gateway —
// the knob that trades one WAN round-trip against N requests.
func BenchmarkScoreBatch(b *testing.B) {
	parts := benchParts(b, 600, 10, 10, 20, 9)
	cfg := core.MockConfig()
	cfg.Trees = 5
	cfg.MaxDepth = 4
	cfg.MaxBins = 8
	cfg.Workers = 1
	sess, err := core.NewSession(parts, cfg)
	if err != nil {
		b.Fatal(err)
	}
	m, err := sess.Train()
	if err != nil {
		b.Fatal(err)
	}

	broker := mq.NewBroker()
	defer broker.Close()
	gw := mq.NewGateway(broker)
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer gw.Close()

	wreg := serve.NewRegistry()
	if err := wreg.Publish(serve.Model{Version: 1, Fragment: m.Parties[0]}); err != nil {
		b.Fatal(err)
	}
	worker := serve.NewPassiveWorker(0, parts[0], wreg)
	go worker.Run(serveBenchDial(b, addr, "sa02b", "sb2a0"))

	breg := serve.NewRegistry()
	err = breg.Publish(serve.Model{
		Version: 1, Fragment: m.Parties[1],
		LearningRate: m.LearningRate, BaseScore: m.BaseScore,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := serve.NewServer(serve.ServerConfig{
		Data:     parts[1],
		Registry: breg,
		Workers:  []core.Transport{serveBenchDial(b, addr, "sb2a0", "sa02b")},
		Session:  "bench",
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Open(); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	n := parts[1].Rows()
	for _, size := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			rows := make([]int32, size)
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				for k := range rows {
					rows[k] = int32((i*size + k) % n)
				}
				if _, _, err := srv.ScoreRows(rows); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*size)/time.Since(start).Seconds(), "req/s")
		})
	}
}

// --- Table 6: party scaling --------------------------------------------

func BenchmarkTable6Parties(b *testing.B) {
	d, err := dataset.Generate(dataset.GenOptions{Rows: 600, Cols: 24, Density: 0.5, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	for _, parties := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("parties=%d", parties), func(b *testing.B) {
			counts := make([]int, parties)
			for i := range counts {
				counts[i] = 24 / parties
			}
			counts[parties-1] += 24 % parties
			parts, err := d.VerticalSplit(counts, parties-1)
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.DefaultConfig()
			cfg.Trees = 1
			cfg.MaxDepth = 3
			cfg.KeyBits = benchKeyBits
			cfg.Workers = 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchTrain(b, parts, cfg)
			}
		})
	}
}
