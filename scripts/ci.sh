#!/usr/bin/env bash
# CI gate: gofmt cleanliness, vet, build everything, race-test the
# packages on the online serving path (mq transport, serve subsystem,
# core protocol), and fuzz-smoke the wire decoder. The full suite
# (go test ./...) is tier-1 and runs separately; this script is the
# fast signal a serving-layer change needs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l cmd internal)
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race (mq, serve, core, fault, checkpoint, ooc) =="
go test -race ./internal/mq/... ./internal/serve/... ./internal/core/... \
  ./internal/fault/... ./internal/checkpoint/... ./internal/ooc/...

echo "== ooc smoke (bounded-memory training under GOMEMLIMIT, race-enabled) =="
# GOMEMLIMIT makes the runtime itself enforce the bound: if the shard
# cache leaked past its budget the test would thrash or OOM rather than
# silently grow the heap.
GOMEMLIMIT=256MiB go test -race -short -count=1 -run 'TestBoundedMemoryTraining|TestModelByteParity' ./internal/ooc

echo "== parallel ooc smoke (shard-major schedule, lock-split store, parallel build; race-enabled) =="
# The shard-major scheduling layer and the lock-split shard cache move
# real work off the store mutex, so this leg runs their parity and
# concurrency regressions under the race detector: node-major vs
# shard-major byte identity, serial vs parallel build byte identity,
# the loads bound, and the slow-prefetch-never-blocks-demand contract.
go test -race -count=1 \
  -run 'TestShardMajorModelParity|TestBuildHistogramsShardedParity|TestPlanShardTasks|TestParallelBuildByteIdentity|TestTrainingLoadsBound|TestSlowPrefetchDoesNotBlockDemandLoad|TestConcurrentRowPrefetchCloseRace|TestHintDepthClamp' \
  ./internal/gbdt ./internal/ooc

echo "== chaos smoke (seeded faults must reproduce the fault-free model) =="
go test -race -run 'TestChaosTrainingMatchesBaseline|TestSessionCheckpointResume' ./internal/core

echo "== storage chaos smoke (disk faults: self-heal or typed abort, byte-identical resume) =="
# Seeded filesystem fault injection over the ooc store and checkpoint
# layers. -short caps the soak at ~30 kill-and-corrupt scenarios (the
# full few-hundred-scenario sweep runs with the tier-1 suite); every
# scenario must self-heal or abort with a typed error — zero panics —
# and every recovered run must resume to the byte-identical model.
go test -race -short -count=1 \
  -run 'TestStorageChaosSoak|TestShardCorruption|TestManifest|TestStoreClose|TestTornWriteAtRenameRecovery|TestOpenSweepsOrphanedTempFiles|TestViewSessionFaultyStoreAborts' \
  ./internal/fault/fsfault ./internal/ooc ./internal/checkpoint ./internal/core

echo "== fuzz smoke (ooc manifest/shard decode: hostile bytes must never panic) =="
go test -run='^$' -fuzz=FuzzOpenHostileStore -fuzztime=10s ./internal/ooc

echo "== serve chaos smoke (overload, breaker trip/recover, no-hang contract) =="
go test -race -timeout 120s \
  -run 'TestServeChaosHTTPNeverHangs|TestServeHardCutRedialRecovery|TestServeBreakerTimeoutTripAndRecover|TestBreaker|TestBatcherQueueBound' \
  ./internal/serve

echo "== HE backend matrix (conformance across registered backends, vec protocol, race-enabled) =="
# Every registered backend through the shared conformance suite, then the
# vectorized protocol parity/rejection tests — the lane-packed path
# shards histogram accumulation across goroutines, so this leg runs
# under the race detector on purpose.
go test -race -count=1 -run 'TestBackendConformance|TestVec|TestScalarBackendByteIdentity|TestUnknownBackendRejected|TestPeerBackendRejection' \
  ./internal/he ./internal/core

echo "== objective smoke (multiclass + ranking: parity, shared-pass counters, rejection paths, race-enabled) =="
# The multi-output protocol interleaves class lanes inside shared
# ciphertext windows and advances passive-party class trees mid-round;
# both are concurrency-sensitive, so this leg runs under the race
# detector across the scalar and mock-batched paths.
go test -race -count=1 \
  -run 'TestMulticlass|TestRanking|TestPeerObjectiveRejection|TestUnregisteredMultiOutputObjectiveRejected|TestSoftmax|TestLambdaRank|TestNewArgParsing|TestNewUnknownName' \
  ./internal/core ./internal/objective

echo "== objective CLI smoke (sim: multiclass over -he paillier-batched, ranking over scalar) =="
obj_tmp=$(mktemp -d)
go run ./cmd/datagen -classes 3 -rows 300 -cols 6 -seed 5 -out "$obj_tmp/mc.libsvm" >/dev/null
go run ./cmd/datagen -rank-groups 30 -group-size 6 -cols 6 -seed 5 -out "$obj_tmp/rank.libsvm" >/dev/null
go run ./cmd/vf2boost sim -data "$obj_tmp/mc.libsvm" -split 3,3 -objective multiclass:3 \
  -he paillier-batched -keybits 512 -trees 2 -depth 2 -out "$obj_tmp/mc.json" >/dev/null
go run ./cmd/vf2boost sim -data "$obj_tmp/rank.libsvm" -split 3,3 -objective ranking:5 \
  -scheme mock -trees 2 -depth 2 -out "$obj_tmp/rank.json" >/dev/null
rm -rf "$obj_tmp"

echo "== fuzz smoke (wire decode) =="
go test -run='^$' -fuzz=FuzzWireDecode -fuzztime=10s ./internal/core

echo "== fuzz smoke (vector ciphertext unmarshal: arbitrary bytes must never panic) =="
go test -run='^$' -fuzz=FuzzVecUnmarshal -fuzztime=10s ./internal/he

echo "== fuzz smoke (ciphertext ops: arbitrary bytes must never panic) =="
go test -run='^$' -fuzz=FuzzCiphertextOps -fuzztime=10s ./internal/paillier

echo "== bench smoke (harness runs, output parses, baseline not rotted) =="
bench_json=$(mktemp)
trap 'rm -f "$bench_json"' EXIT
scripts/bench.sh -short -out "$bench_json" >/dev/null 2>&1
go run ./cmd/benchfmt -check "$bench_json"
if [ -f BENCH_crypto.json ]; then
  go run ./cmd/benchfmt -check BENCH_crypto.json
fi
if [ -f BENCH_he.json ]; then
  go run ./cmd/benchfmt -check BENCH_he.json
fi
if [ -f BENCH_ooc.json ]; then
  go run ./cmd/benchfmt -check BENCH_ooc.json
fi

echo "== ci ok =="
