#!/usr/bin/env bash
# CI gate: vet, build everything, and race-test the packages on the online
# serving path (mq transport, serve subsystem, core protocol). The full
# suite (go test ./...) is tier-1 and runs separately; this script is the
# fast signal a serving-layer change needs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race (mq, serve, core) =="
go test -race ./internal/mq/... ./internal/serve/... ./internal/core/...

echo "== ci ok =="
