#!/usr/bin/env bash
# Distributed demo: three processes — a message-queue gateway, a passive
# Party A and an active Party B — train a federated model over TCP, then
# score the training shards through the fragment-only prediction protocol.
# This is the deployment shape of the paper (Section 3.1), one process per
# enterprise plus the gateway machines.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== building =="
go build -o "$WORK/vf2boost" ./cmd/vf2boost
go build -o "$WORK/datagen" ./cmd/datagen

echo "== generating per-party shards =="
"$WORK/datagen" -rows 800 -cols 20 -density 0.5 -seed 7 \
  -out "$WORK/demo.libsvm" -split 12,8

SECRET=demo-secret
PORT=17341

echo "== starting gateway =="
"$WORK/vf2boost" gateway -addr "127.0.0.1:$PORT" -secret "$SECRET" &
sleep 1

echo "== training (two processes) =="
"$WORK/vf2boost" party -role a -index 0 -gateway "127.0.0.1:$PORT" -secret "$SECRET" \
  -data "$WORK/demo.partyA0.libsvm" -out "$WORK/fragA.json" \
  -trees 3 -depth 3 -scheme mock &
A_PID=$!
"$WORK/vf2boost" party -role b -peers 1 -gateway "127.0.0.1:$PORT" -secret "$SECRET" \
  -data "$WORK/demo.partyB.libsvm" -out "$WORK/fragB.json" \
  -trees 3 -depth 3 -scheme mock
wait "$A_PID"

echo "== federated prediction (two processes) =="
"$WORK/vf2boost" predict -role a -index 0 -gateway "127.0.0.1:$PORT" -secret "$SECRET" \
  -data "$WORK/demo.partyA0.libsvm" -model "$WORK/fragA.json" &
P_PID=$!
"$WORK/vf2boost" predict -role b -peers 1 -gateway "127.0.0.1:$PORT" -secret "$SECRET" \
  -data "$WORK/demo.partyB.libsvm" -model "$WORK/fragB.json" -eta 0.1 \
  -out "$WORK/preds.txt"
wait "$P_PID"

LINES=$(wc -l < "$WORK/preds.txt")
echo "== batch prediction done: $LINES margins written =="
test "$LINES" -eq 800

echo "== online scoring (server + sidecar) =="
HTTP_PORT=17342
"$WORK/vf2boost" sidecar -index 0 -gateway "127.0.0.1:$PORT" -secret "$SECRET" \
  -data "$WORK/demo.partyA0.libsvm" -models "$WORK/fragA.json" &
SIDECAR_PID=$!
"$WORK/vf2boost" serve -addr "127.0.0.1:$HTTP_PORT" -peers 1 \
  -gateway "127.0.0.1:$PORT" -secret "$SECRET" \
  -data "$WORK/demo.partyB.libsvm" -models "$WORK/fragB.json" \
  -eta 0.1 -max-batch 16 -max-wait 5ms &
SERVE_PID=$!

# Wait on /readyz, not /healthz: liveness comes up before the worker
# session and model registry do, and scoring needs all three.
for i in $(seq 1 30); do
  curl -fsS "http://127.0.0.1:$HTTP_PORT/readyz" >/dev/null 2>&1 && break
  sleep 0.3
done
curl -fsS "http://127.0.0.1:$HTTP_PORT/healthz"
curl -fsS "http://127.0.0.1:$HTTP_PORT/readyz"

echo "-- scoring a few rows over HTTP --"
for r in 0 1 2 3; do
  curl -fsS -X POST -d "{\"row\": $r}" "http://127.0.0.1:$HTTP_PORT/score"
  echo
done

echo "-- online margin must match the batch prediction protocol --"
M0=$(curl -fsS -X POST -d '{"row": 0}' "http://127.0.0.1:$HTTP_PORT/score" \
  | sed -E 's/.*"margin":([-+0-9.eE]+).*/\1/')
P0=$(head -1 "$WORK/preds.txt")
awk -v a="$M0" -v b="$P0" 'BEGIN { d = a - b; if (d < 0) d = -d; exit !(d < 1e-9) }'
echo "row 0: serve=$M0 predict=$P0 (match)"

echo "-- serving metrics --"
curl -fsS "http://127.0.0.1:$HTTP_PORT/metricsz" | head -8

kill -INT "$SERVE_PID"
wait "$SERVE_PID" || true
wait "$SIDECAR_PID" || true
echo "== done =="
