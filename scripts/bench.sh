#!/usr/bin/env bash
# Reproducible crypto/serving benchmark harness. Runs the Paillier
# primitive benchmarks (Enc, Dec, HAdd, SMul, obfuscator generation
# baseline vs fixed-base), the paper's Fig. 7 histogram-accumulation
# benches, and the online-scoring BenchmarkScoreBatch, then pipes the lot
# through cmd/benchfmt into a committed JSON baseline.
#
# Usage: scripts/bench.sh [-short] [-out FILE]
#   -short    small key sizes and minimal bench time: the CI smoke leg.
#             Writes nowhere by default (stdout) so it cannot clobber the
#             committed baseline.
#   -out FILE JSON output path. The full run defaults to BENCH_crypto.json
#             at the repo root — the committed baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

short=0
out=""
while [ $# -gt 0 ]; do
  case "$1" in
    -short) short=1 ;;
    -out) out="$2"; shift ;;
    *) echo "usage: scripts/bench.sh [-short] [-out FILE]" >&2; exit 2 ;;
  esac
  shift
done

if [ "$short" -eq 1 ]; then
  benchtime="20x"
  # Small moduli only: 2048-bit keygen alone takes longer than the whole
  # smoke budget.
  obf_filter='BenchmarkObfuscator(Baseline|FixedBase)/bits=(256|512)$'
  prim_filter='BenchmarkEncrypt$|BenchmarkEncryptWithPool$|BenchmarkEncryptFastObfuscation$|BenchmarkDecryptCRT$|BenchmarkHAdd$|BenchmarkSMul$'
else
  benchtime="1s"
  obf_filter='BenchmarkObfuscator(Baseline|FixedBase)'
  prim_filter='BenchmarkEncrypt$|BenchmarkEncryptWithPool$|BenchmarkEncryptFastObfuscation$|BenchmarkDecryptCRT$|BenchmarkHAdd$|BenchmarkSMul$'
  [ -n "$out" ] || out="BENCH_crypto.json"
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== paillier primitives ==" >&2
go test -run '^$' -bench "$prim_filter" -benchtime "$benchtime" ./internal/paillier | tee -a "$tmp" >&2

echo "== obfuscator generation: baseline r^n vs fixed-base h^x ==" >&2
go test -run '^$' -bench "$obf_filter" -benchtime "$benchtime" -timeout 30m ./internal/paillier | tee -a "$tmp" >&2

echo "== histogram accumulation (Fig. 7) ==" >&2
go test -run '^$' -bench 'BenchmarkFig7' -benchtime "$benchtime" . | tee -a "$tmp" >&2

echo "== online scoring ==" >&2
go test -run '^$' -bench 'BenchmarkScoreBatch' -benchtime "$benchtime" . | tee -a "$tmp" >&2

echo "== benchfmt ==" >&2
if [ -n "$out" ]; then
  go run ./cmd/benchfmt -in "$tmp" -date "$(date -u +%Y-%m-%d)" -out "$out"
  echo "wrote $out" >&2
else
  go run ./cmd/benchfmt -in "$tmp" -date "$(date -u +%Y-%m-%d)"
fi

echo "== HE backends: scalar vs lane-packed (cts/round, hadds/bin, wall time) ==" >&2
he_tmp=$(mktemp)
trap 'rm -f "$tmp" "$he_tmp"' EXIT
if [ "$short" -eq 1 ]; then
  # Smoke only: the 256-bit geometry packs one ⟨g,h⟩ pair per ciphertext;
  # the paper-scale 2048-bit comparison (15 pairs, the ≥8× reduction) is
  # the full run's job. Result goes to stdout, never the baseline.
  go test -run '^$' -bench 'BenchmarkHE(BackendRound|Accumulate)/.*/bits=256$' \
    -benchtime 3x . | tee -a "$he_tmp" >&2
  # One iteration of the k-class round keeps the objective_amortization
  # derivation covered without paying 1024-bit benchtime in the smoke.
  go test -run '^$' -bench 'BenchmarkObjectiveRound' -benchtime 1x . | tee -a "$he_tmp" >&2
  go run ./cmd/benchfmt -in "$he_tmp" -date "$(date -u +%Y-%m-%d)"
else
  go test -run '^$' -bench 'BenchmarkHE(BackendRound|Accumulate)|BenchmarkObjectiveRound' \
    -benchtime 1s -timeout 60m . | tee -a "$he_tmp" >&2
  go run ./cmd/benchfmt -in "$he_tmp" -date "$(date -u +%Y-%m-%d)" -out BENCH_he.json
  echo "wrote BENCH_he.json" >&2
fi

echo "== out-of-core scale (rows/sec and peak heap vs shard-cache budget) ==" >&2
if [ "$short" -eq 1 ]; then
  # Smoke only: tiny row count, result discarded (never clobbers the
  # committed baseline).
  go run ./cmd/experiments -run oocscale -ooc-rows 100000 -trees 2 -build-workers 4 >&2
else
  go run ./cmd/experiments -run oocscale -build-workers 4 -json BENCH_ooc.json >&2
  echo "wrote BENCH_ooc.json" >&2
fi

echo "== objective scale (cipher ops per round per class vs k; parity and NDCG gates) ==" >&2
if [ "$short" -eq 1 ]; then
  # Smoke only: mock lanes, small rows, result discarded.
  go run ./cmd/experiments -run objscale -obj-rows 400 -backend mock-batched -keybits 2048 >&2
else
  go run ./cmd/experiments -run objscale -json BENCH_objectives.json >&2
  echo "wrote BENCH_objectives.json" >&2
fi
