package vf2boost

import (
	"bytes"
	"fmt"
	"math"
	"path/filepath"
	"testing"
)

func quick() Config {
	c := MockConfig()
	c.Trees = 4
	c.MaxDepth = 3
	c.MaxBins = 8
	return c
}

func TestPublicAPIEndToEnd(t *testing.T) {
	joined, err := Generate(SynthOptions{Rows: 800, Cols: 10, Density: 1, Dense: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := joined.VerticalSplit([]int{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if parts[0].Labels() != nil {
		t.Fatal("passive shard has labels")
	}
	model, stats, err := TrainFederated(parts, quick())
	if err != nil {
		t.Fatal(err)
	}
	margins, err := model.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	auc, err := AUC(margins, joined.Labels())
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.7 {
		t.Errorf("AUC = %g", auc)
	}
	if stats.BytesSent == 0 {
		t.Error("no bytes accounted")
	}
	if len(stats.PerTreeTime) != 4 {
		t.Errorf("PerTreeTime has %d entries", len(stats.PerTreeTime))
	}
	if got := model.SplitsByParty(); len(got) != 2 {
		t.Errorf("SplitsByParty = %v", got)
	}
}

func TestPublicLocalVsFederated(t *testing.T) {
	joined, _ := Generate(SynthOptions{Rows: 600, Cols: 8, Density: 1, Dense: true, Seed: 2})
	parts, _ := joined.VerticalSplit([]int{4, 4})
	cfg := quick()
	fed, _, err := TrainFederated(parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	local, err := TrainLocal(joined, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := fed.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	lm := local.PredictAll(joined)
	for i := range fm {
		if math.Abs(fm[i]-lm[i]) > 1e-6 {
			t.Fatalf("federated diverges from local at %d", i)
		}
	}
}

func TestPublicModelSaveLoad(t *testing.T) {
	joined, _ := Generate(SynthOptions{Rows: 200, Cols: 6, Density: 1, Dense: true, Seed: 3})
	parts, _ := joined.VerticalSplit([]int{3, 3})
	m, _, err := TrainFederated(parts, quick())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := m.PredictAll(parts)
	b, _ := back.PredictAll(parts)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("model round trip changed predictions")
		}
	}
}

func TestPublicLibSVMRoundTrip(t *testing.T) {
	d, _ := Generate(SynthOptions{Rows: 50, Cols: 6, Density: 0.5, Seed: 4})
	path := filepath.Join(t.TempDir(), "data.libsvm")
	if err := d.SaveLibSVM(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLibSVM(path, d.Cols())
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows() != d.Rows() || back.Cols() != d.Cols() {
		t.Error("shape changed")
	}
}

func TestPublicPresets(t *testing.T) {
	names := Presets()
	if len(names) != 7 {
		t.Fatalf("presets = %v", names)
	}
	d, parts, err := GeneratePreset("census", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() == 0 || len(parts) != 2 {
		t.Error("preset generation broken")
	}
	if _, _, err := GeneratePreset("nope", 1, 1); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestPublicAlignInstances(t *testing.T) {
	idsA := []string{"u1", "u2", "u3"}
	idsB := []string{"u3", "u4", "u1"}
	posA, posB, err := AlignInstances(idsA, idsB)
	if err != nil {
		t.Fatal(err)
	}
	if len(posA) != 2 || len(posB) != 2 {
		t.Fatalf("alignment %v %v", posA, posB)
	}
	for k := range posA {
		if idsA[posA[k]] != idsB[posB[k]] {
			t.Error("alignment order broken")
		}
	}
}

func TestPublicTrainValidSplitAndSubRows(t *testing.T) {
	d, _ := Generate(SynthOptions{Rows: 100, Cols: 4, Density: 1, Dense: true, Seed: 5})
	tr, va := d.TrainValidSplit(0.7, 9)
	if tr.Rows() != 70 || va.Rows() != 30 {
		t.Errorf("split %d/%d", tr.Rows(), va.Rows())
	}
	sub := d.SubRows([]int{5, 10, 15})
	if sub.Rows() != 3 {
		t.Error("SubRows broken")
	}
}

func ExampleAlignInstances() {
	// Two enterprises align their overlapping customers with PSI before
	// training; neither learns the other's non-overlapping IDs.
	bank := []string{"u1", "u2", "u3"}
	telco := []string{"u3", "u9", "u1"}
	posBank, posTelco, _ := AlignInstances(bank, telco)
	for k := range posBank {
		fmt.Println(bank[posBank[k]] == telco[posTelco[k]])
	}
	// Output:
	// true
	// true
}

func ExampleGeneratePreset() {
	// A scaled synthetic equivalent of the paper's rcv1 dataset.
	d, parts, _ := GeneratePreset("rcv1", 1000, 1)
	fmt.Println(d.Rows() > 0, len(parts))
	// Output: true 2
}

func ExampleTrainFederated() {
	joined, _ := Generate(SynthOptions{Rows: 400, Cols: 8, Density: 1, Dense: true, Seed: 7})
	parts, _ := joined.VerticalSplit([]int{4, 4})
	cfg := MockConfig() // plaintext mock for a fast doc example
	cfg.Trees = 3
	cfg.MaxDepth = 3
	model, _, _ := TrainFederated(parts, cfg)
	margins, _ := model.PredictAll(parts)
	auc, _ := AUC(margins, joined.Labels())
	fmt.Println(auc > 0.6)
	// Output: true
}
