// Multi-output objective benchmarks: one boosting round of a k-class
// session versus the binary (k=1) reference over the lane-packed
// backend. A k-class round ships ONE encrypted gradient pass and shares
// its root decode across all k class trees, so the cipher ops charged to
// each class tree must fall as k grows; scripts/bench.sh commits the
// result inside BENCH_he.json and cmd/benchfmt derives the per-class
// amortization ratio as objective_amortization/k=N.
package vf2boost

import (
	"fmt"
	"testing"

	"vf2boost/internal/core"
	"vf2boost/internal/dataset"
	"vf2boost/internal/objective"
)

// BenchmarkObjectiveRound trains one round (k class trees) end to end
// and reports Party B's cipher operations per round per class — the
// amortization headline of the objective subsystem.
func BenchmarkObjectiveRound(b *testing.B) {
	const bits = 1024
	for _, k := range []int{1, 3} {
		b.Run(fmt.Sprintf("k=%d/bits=%d", k, bits), func(b *testing.B) {
			classes := k
			if classes < 2 {
				classes = 2 // generator minimum; k=1 binarizes below
			}
			d, err := dataset.GenerateMulticlass(dataset.MultiGenOptions{
				Rows: 400, Cols: 12, Classes: classes, Seed: 29,
			})
			if err != nil {
				b.Fatal(err)
			}
			if k == 1 {
				for i, y := range d.Labels {
					if y > 0 {
						d.Labels[i] = 1
					} else {
						d.Labels[i] = 0
					}
				}
			}
			parts, err := d.VerticalSplit([]int{6, 6}, 1)
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.DefaultConfig()
			cfg.Trees = 1
			cfg.MaxDepth = 3
			cfg.MaxBins = 8
			cfg.KeyBits = bits
			cfg.HEBackend = "paillier-batched"
			if k > 1 {
				if cfg.Objective, err = objective.New(fmt.Sprintf("multiclass:%d", k)); err != nil {
					b.Fatal(err)
				}
			}
			var ops int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := core.NewSession(parts, cfg, core.WithDecryptor(benchDecryptorBits(b, bits)))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Train(); err != nil {
					b.Fatal(err)
				}
				ops += s.Crypto().Encryptions() + s.Crypto().Decryptions()
			}
			b.ReportMetric(float64(ops)/float64(b.N)/float64(k), "cipherops/round/class")
		})
	}
}
